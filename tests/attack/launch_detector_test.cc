/** @file Unit tests for the §3.2 launch detector. */

#include <gtest/gtest.h>

#include "attack/launch_detector.h"

namespace gpusc::attack {
namespace {

using namespace gpusc::sim_literals;

android::DeviceConfig
quiet()
{
    android::DeviceConfig cfg;
    cfg.notificationMeanInterval = SimTime();
    return cfg;
}

TEST(LaunchDetectorTest, FiresOnTargetLaunch)
{
    android::Device dev(quiet());
    LaunchDetector det(dev, {"chase"}, {});
    std::string seen;
    det.setOnLaunch([&](const std::string &app) { seen = app; });
    dev.boot();
    det.start();
    dev.runFor(1_s);
    EXPECT_TRUE(seen.empty()); // nothing launched yet
    dev.launchTargetApp();
    dev.runFor(1_s);
    EXPECT_EQ(seen, "chase");
    EXPECT_TRUE(det.targetInForeground());
    EXPECT_EQ(det.launchesDetected(), 1u);
}

TEST(LaunchDetectorTest, IgnoresNonTargetApps)
{
    android::DeviceConfig cfg = quiet();
    cfg.app = "amex";
    android::Device dev(cfg);
    LaunchDetector det(dev, {"chase"}, {}); // amex not targeted
    bool fired = false;
    det.setOnLaunch([&](const std::string &) { fired = true; });
    dev.boot();
    det.start();
    dev.launchTargetApp();
    dev.runFor(2_s);
    EXPECT_FALSE(fired);
}

TEST(LaunchDetectorTest, ExitFiresOnSwitchAway)
{
    android::Device dev(quiet());
    LaunchDetector det(dev, {"chase"}, {});
    int exits = 0;
    det.setOnExit([&] { ++exits; });
    dev.boot();
    det.start();
    dev.launchTargetApp();
    dev.runFor(1_s);
    ASSERT_TRUE(det.targetInForeground());
    dev.switchToOtherApp();
    dev.runFor(2_s);
    EXPECT_EQ(exits, 1);
    EXPECT_FALSE(det.targetInForeground());
}

TEST(LaunchDetectorTest, DetectionRateMissesSomeSessions)
{
    // Over many foreground sessions, the miss rate approaches
    // 1 - detectionRate (paper: >90% accuracy), and a missed session
    // stays missed (no double counting within one session).
    android::Device dev(quiet());
    LaunchDetector::Params params;
    params.detectionRate = 0.7;
    params.seed = 99;
    LaunchDetector det(dev, {"chase"}, params);
    dev.boot();
    det.start();
    for (int i = 0; i < 40; ++i) {
        dev.launchTargetApp();
        dev.runFor(1_s);
        dev.switchToOtherApp();
        dev.runFor(1_s);
    }
    const auto total = det.launchesDetected() + det.launchesMissed();
    EXPECT_EQ(total, 40u);
    EXPECT_NEAR(double(det.launchesDetected()) / double(total), 0.7,
                0.18);
}

TEST(LaunchDetectorTest, StopHaltsPolling)
{
    android::Device dev(quiet());
    LaunchDetector det(dev, {"chase"}, {});
    bool fired = false;
    det.setOnLaunch([&](const std::string &) { fired = true; });
    dev.boot();
    det.start();
    det.stop();
    dev.launchTargetApp();
    dev.runFor(2_s);
    EXPECT_FALSE(fired);
}

} // namespace
} // namespace gpusc::attack
