/** @file Unit tests for Algorithm 1 (synthetic model, no training). */

#include <gtest/gtest.h>

#include "attack/online_inference.h"

namespace gpusc::attack {
namespace {

using namespace gpusc::sim_literals;

SignatureModel
toyModel()
{
    SignatureModel m;
    std::array<double, gpu::kNumSelectedCounters> scale{};
    scale.fill(1.0);
    m.setScale(scale);
    LabelSignature w;
    w.label = "w";
    w.centroid[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ] = 1000;
    m.addSignature(w);
    LabelSignature n;
    n.label = "n";
    n.centroid[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ] = 1200;
    m.addSignature(n);
    m.setThreshold(20.0);
    return m;
}

PcChange
change(SimTime t, std::int64_t prim)
{
    PcChange c;
    c.time = t;
    c.delta[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ] = prim;
    return c;
}

TEST(OnlineInferenceTest, DirectClassification)
{
    const SignatureModel m = toyModel();
    OnlineInference inf(m, {});
    const auto key = inf.onChange(change(1_s, 1003));
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(key->label, "w");
    EXPECT_EQ(key->time, 1_s);
    EXPECT_EQ(inf.inferredCount(), 1u);
}

TEST(OnlineInferenceTest, DuplicationWithinTminIsDropped)
{
    const SignatureModel m = toyModel();
    OnlineInference inf(m, {});
    EXPECT_TRUE(inf.onChange(change(1_s, 1000)).has_value());
    // The popup animation re-renders 17ms later: same delta, dropped.
    EXPECT_FALSE(
        inf.onChange(change(1_s + 17_ms, 1000)).has_value());
    EXPECT_EQ(inf.duplicationDrops(), 1u);
    // A human-paced second press goes through.
    EXPECT_TRUE(
        inf.onChange(change(1_s + 300_ms, 1000)).has_value());
}

TEST(OnlineInferenceTest, SplitPiecesAreCombined)
{
    const SignatureModel m = toyModel();
    OnlineInference inf(m, {});
    // A mid-render read bisects the 1200-delta into 700 + 500.
    EXPECT_FALSE(inf.onChange(change(1_s, 700)).has_value());
    const auto key = inf.onChange(change(1_s + 8_ms, 500));
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(key->label, "n");
    // The inferred press is stamped at the first piece's time.
    EXPECT_EQ(key->time, 1_s);
    EXPECT_EQ(inf.splitCombines(), 1u);
}

TEST(OnlineInferenceTest, CombineWindowLimitsSplitRepair)
{
    const SignatureModel m = toyModel();
    OnlineInference inf(m, {});
    EXPECT_FALSE(inf.onChange(change(1_s, 700)).has_value());
    // Too late to be the same frame's second half.
    EXPECT_FALSE(
        inf.onChange(change(1_s + 100_ms, 500)).has_value());
    EXPECT_EQ(inf.splitCombines(), 0u);
    EXPECT_EQ(inf.noiseCount(), 2u);
}

TEST(OnlineInferenceTest, NoiseIsReportedToListener)
{
    const SignatureModel m = toyModel();
    OnlineInference inf(m, {});
    int noiseEvents = 0;
    inf.setNoiseListener([&](const PcChange &) { ++noiseEvents; });
    EXPECT_FALSE(inf.onChange(change(1_s, 42)).has_value());
    EXPECT_EQ(noiseEvents, 1);
}

TEST(OnlineInferenceTest, AcceptedChangesClearPendingSplit)
{
    const SignatureModel m = toyModel();
    OnlineInference inf(m, {});
    EXPECT_FALSE(inf.onChange(change(1_s, 40)).has_value()); // noise
    EXPECT_TRUE(inf.onChange(change(1_s + 8_ms, 1000)).has_value());
    // The pending noise must not combine with later changes.
    EXPECT_FALSE(
        inf.onChange(change(1_s + 200_ms, 960)).has_value());
}

TEST(OnlineInferenceTest, DupFilterAblation)
{
    const SignatureModel m = toyModel();
    OnlineInference inf(m, {});
    inf.setDuplicationFilterEnabled(false);
    EXPECT_TRUE(inf.onChange(change(1_s, 1000)).has_value());
    // Without the filter the duplicate frame becomes a phantom key.
    EXPECT_TRUE(inf.onChange(change(1_s + 17_ms, 1000)).has_value());
}

TEST(OnlineInferenceTest, SplitRepairAblation)
{
    const SignatureModel m = toyModel();
    OnlineInference inf(m, {});
    inf.setSplitRepairEnabled(false);
    EXPECT_FALSE(inf.onChange(change(1_s, 700)).has_value());
    EXPECT_FALSE(inf.onChange(change(1_s + 8_ms, 500)).has_value());
    EXPECT_EQ(inf.splitCombines(), 0u);
}

TEST(OnlineInferenceTest, TminIsConfigurable)
{
    const SignatureModel m = toyModel();
    OnlineInference::Params params;
    params.tmin = 500_ms;
    OnlineInference inf(m, params);
    EXPECT_TRUE(inf.onChange(change(1_s, 1000)).has_value());
    EXPECT_FALSE(
        inf.onChange(change(1_s + 300_ms, 1200)).has_value());
    EXPECT_TRUE(
        inf.onChange(change(1_s + 600_ms, 1200)).has_value());
}

TEST(OnlineInferenceTest, LastInferredTimeTracks)
{
    const SignatureModel m = toyModel();
    OnlineInference inf(m, {});
    (void)inf.onChange(change(2_s, 1000));
    EXPECT_EQ(inf.lastInferredTime(), 2_s);
}

} // namespace
} // namespace gpusc::attack
