/** @file Unit tests for the preloaded model store. */

#include <gtest/gtest.h>

#include <cstdio>

#include "attack/model_store.h"

namespace gpusc::attack {
namespace {

SignatureModel
namedModel(const std::string &key)
{
    SignatureModel m;
    m.setModelKey(key);
    std::array<double, gpu::kNumSelectedCounters> scale{};
    scale.fill(1.0);
    m.setScale(scale);
    LabelSignature sig;
    sig.label = "a";
    sig.centroid[0] = 123;
    m.addSignature(sig);
    m.setThreshold(1.0);
    return m;
}

TEST(ModelStoreTest, PutAndFind)
{
    ModelStore store;
    store.put(namedModel("cfg/one"));
    store.put(namedModel("cfg/two"));
    EXPECT_EQ(store.size(), 2u);
    ASSERT_NE(store.find("cfg/one"), nullptr);
    EXPECT_EQ(store.find("cfg/one")->modelKey(), "cfg/one");
    EXPECT_EQ(store.find("missing"), nullptr);
}

TEST(ModelStoreTest, PutReplacesSameKey)
{
    ModelStore store;
    store.put(namedModel("cfg"));
    SignatureModel updated = namedModel("cfg");
    updated.setThreshold(9.0);
    store.put(std::move(updated));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_NEAR(store.find("cfg")->threshold(), 9.0, 1e-6);
}

TEST(ModelStoreTest, KeysAndTotalSize)
{
    ModelStore store;
    store.put(namedModel("a"));
    store.put(namedModel("b"));
    EXPECT_EQ(store.keys(), (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(store.totalByteSize(),
              store.find("a")->byteSize() +
                  store.find("b")->byteSize());
}

TEST(ModelStoreTest, SerializeRoundTrip)
{
    ModelStore store;
    store.put(namedModel("alpha"));
    store.put(namedModel("beta"));
    const auto blob = store.serialize();
    const ModelStore back = ModelStore::deserialize(blob);
    EXPECT_EQ(back.size(), 2u);
    ASSERT_NE(back.find("alpha"), nullptr);
    EXPECT_TRUE(*back.find("alpha") == *store.find("alpha"));
}

TEST(ModelStoreTest, FileRoundTrip)
{
    ModelStore store;
    store.put(namedModel("persisted"));
    const std::string path = ::testing::TempDir() + "gpusc_store.bin";
    ASSERT_TRUE(store.saveToFile(path));
    const ModelStore back = ModelStore::loadFromFile(path);
    EXPECT_EQ(back.size(), 1u);
    EXPECT_NE(back.find("persisted"), nullptr);
    std::remove(path.c_str());
}

TEST(ModelStoreTest, SaveToBadPathFails)
{
    ModelStore store;
    EXPECT_FALSE(store.saveToFile("/nonexistent-dir/x/y/z.bin"));
}

TEST(ModelStoreTest, TruncatedBlobYieldsEmptyStore)
{
    ModelStore store;
    store.put(namedModel("alpha"));
    std::vector<std::uint8_t> blob = store.serialize();
    for (std::size_t cut = 0; cut < blob.size(); ++cut) {
        const std::vector<std::uint8_t> partial(
            blob.begin(), blob.begin() + long(cut));
        EXPECT_FALSE(ModelStore::tryDeserialize(partial).has_value())
            << "prefix of " << cut << " bytes parsed as valid";
    }
    // The non-try variant degrades to an empty store, never aborts.
    const std::vector<std::uint8_t> chopped(blob.begin(),
                                            blob.begin() + 8);
    EXPECT_EQ(ModelStore::deserialize(chopped).size(), 0u);
}

TEST(ModelStoreTest, GarbageBlobYieldsEmptyStore)
{
    const std::vector<std::uint8_t> garbage(64, 0xab);
    EXPECT_FALSE(ModelStore::tryDeserialize(garbage).has_value());
    EXPECT_EQ(ModelStore::deserialize(garbage).size(), 0u);
}

TEST(ModelStoreTest, TrailingGarbageIsRejected)
{
    ModelStore store;
    store.put(namedModel("alpha"));
    std::vector<std::uint8_t> blob = store.serialize();
    blob.push_back(0x00);
    EXPECT_FALSE(ModelStore::tryDeserialize(blob).has_value());
}

TEST(ModelStoreTest, MissingFileYieldsEmptyStore)
{
    EXPECT_FALSE(
        ModelStore::tryLoadFromFile("/nonexistent/store.bin")
            .has_value());
    EXPECT_EQ(
        ModelStore::loadFromFile("/nonexistent/store.bin").size(),
        0u);
}

TEST(ModelStoreTest, AnyFlippedFileByteIsDetected)
{
    ModelStore store;
    store.put(namedModel("alpha"));
    store.put(namedModel("beta"));
    const std::string path =
        ::testing::TempDir() + "gpusc_store_corrupt.bin";
    ASSERT_TRUE(store.saveToFile(path));

    std::vector<std::uint8_t> clean;
    {
        FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        std::uint8_t buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            clean.insert(clean.end(), buf, buf + n);
        std::fclose(f);
    }
    ASSERT_FALSE(clean.empty());

    // The CRC envelope catches a flip of any byte in the file: the
    // load must come back empty instead of crashing or silently
    // returning damaged models.
    for (std::size_t i = 0; i < clean.size(); ++i) {
        std::vector<std::uint8_t> bad = clean;
        bad[i] ^= 0x5a;
        FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(bad.data(), 1, bad.size(), f),
                  bad.size());
        std::fclose(f);
        EXPECT_FALSE(ModelStore::tryLoadFromFile(path).has_value())
            << "flipped byte " << i << " went undetected";
    }
    std::remove(path.c_str());
}

TEST(ModelStoreTest, InPlaceUpdatedModelSurvivesEvictionAndReload)
{
    // The streaming service adapts a session's model copy in place
    // (SignatureModel::updateSignature) and a deployment persists the
    // adapted model by putting it back into the store. Evicting that
    // store to disk and reloading must reproduce the adapted
    // centroids byte for byte.
    SignatureModel m = namedModel("adapted");
    gpu::CounterVec obs{};
    obs.fill(500);
    ASSERT_TRUE(m.updateSignature("a", obs, 0.25));
    const std::int64_t adapted = m.signatures()[0].centroid[0];
    EXPECT_NE(adapted, 123); // the update actually moved it

    ModelStore store;
    store.put(m);
    const std::vector<std::uint8_t> pinned =
        store.find("adapted")->serialize();

    const std::string path =
        ::testing::TempDir() + "gpusc_store_adapted.bin";
    ASSERT_TRUE(store.saveToFile(path));
    const ModelStore back = ModelStore::loadFromFile(path);
    ASSERT_NE(back.find("adapted"), nullptr);
    EXPECT_TRUE(*back.find("adapted") == m);
    EXPECT_EQ(back.find("adapted")->signatures()[0].centroid[0],
              adapted);
    // CRC pin: the reloaded model re-serialises to identical bytes.
    EXPECT_EQ(back.find("adapted")->serialize(), pinned);
    std::remove(path.c_str());
}

TEST(ModelStoreTest, InPlaceUpdatePreservesSerialisedSize)
{
    // put()-back of an adapted model must never change the store's
    // size accounting: updates move centroid values, not layout.
    SignatureModel m = namedModel("sized");
    ModelStore store;
    store.put(m);
    const std::size_t before = store.totalByteSize();
    gpu::CounterVec obs{};
    obs.fill(999999);
    ASSERT_TRUE(m.updateSignature("a", obs, 1.0));
    store.put(m);
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.totalByteSize(), before);
}

TEST(ModelStoreTest, CorruptedAdaptedStoreIsRejectedOnReload)
{
    // The CRC envelope protects adapted models exactly like trained
    // ones: flip one byte of the persisted file and the reload must
    // come back empty instead of yielding a silently damaged model.
    SignatureModel m = namedModel("guarded");
    gpu::CounterVec obs{};
    obs.fill(321);
    ASSERT_TRUE(m.updateSignature("a", obs, 0.5));
    ModelStore store;
    store.put(m);
    const std::string path =
        ::testing::TempDir() + "gpusc_store_guarded.bin";
    ASSERT_TRUE(store.saveToFile(path));

    FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 24, SEEK_SET), 0);
    std::uint8_t byte = 0;
    ASSERT_EQ(std::fread(&byte, 1, 1, f), 1u);
    byte ^= 0x5a;
    ASSERT_EQ(std::fseek(f, 24, SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(&byte, 1, 1, f), 1u);
    std::fclose(f);
    EXPECT_FALSE(ModelStore::tryLoadFromFile(path).has_value());
    std::remove(path.c_str());
}

TEST(ModelStoreTest, GetOrTrainCachesByConfiguration)
{
    ModelStore store;
    const OfflineTrainer trainer(OfflineTrainer::Params{
        .repetitions = 2,
        .thresholdMargin = 2.5,
        .pressDuration = SimTime::fromMs(120)});
    android::DeviceConfig cfg;
    cfg.keyboard = "go"; // smallest duplication/animation surface
    const SignatureModel &first = store.getOrTrain(cfg, trainer);
    EXPECT_EQ(store.size(), 1u);
    const SignatureModel &second = store.getOrTrain(cfg, trainer);
    EXPECT_EQ(&first, &second); // trained exactly once
}

} // namespace
} // namespace gpusc::attack
