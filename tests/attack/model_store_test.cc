/** @file Unit tests for the preloaded model store. */

#include <gtest/gtest.h>

#include <cstdio>

#include "attack/model_store.h"

namespace gpusc::attack {
namespace {

SignatureModel
namedModel(const std::string &key)
{
    SignatureModel m;
    m.setModelKey(key);
    std::array<double, gpu::kNumSelectedCounters> scale{};
    scale.fill(1.0);
    m.setScale(scale);
    LabelSignature sig;
    sig.label = "a";
    sig.centroid[0] = 123;
    m.addSignature(sig);
    m.setThreshold(1.0);
    return m;
}

TEST(ModelStoreTest, PutAndFind)
{
    ModelStore store;
    store.put(namedModel("cfg/one"));
    store.put(namedModel("cfg/two"));
    EXPECT_EQ(store.size(), 2u);
    ASSERT_NE(store.find("cfg/one"), nullptr);
    EXPECT_EQ(store.find("cfg/one")->modelKey(), "cfg/one");
    EXPECT_EQ(store.find("missing"), nullptr);
}

TEST(ModelStoreTest, PutReplacesSameKey)
{
    ModelStore store;
    store.put(namedModel("cfg"));
    SignatureModel updated = namedModel("cfg");
    updated.setThreshold(9.0);
    store.put(std::move(updated));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_NEAR(store.find("cfg")->threshold(), 9.0, 1e-6);
}

TEST(ModelStoreTest, KeysAndTotalSize)
{
    ModelStore store;
    store.put(namedModel("a"));
    store.put(namedModel("b"));
    EXPECT_EQ(store.keys(), (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(store.totalByteSize(),
              store.find("a")->byteSize() +
                  store.find("b")->byteSize());
}

TEST(ModelStoreTest, SerializeRoundTrip)
{
    ModelStore store;
    store.put(namedModel("alpha"));
    store.put(namedModel("beta"));
    const auto blob = store.serialize();
    const ModelStore back = ModelStore::deserialize(blob);
    EXPECT_EQ(back.size(), 2u);
    ASSERT_NE(back.find("alpha"), nullptr);
    EXPECT_TRUE(*back.find("alpha") == *store.find("alpha"));
}

TEST(ModelStoreTest, FileRoundTrip)
{
    ModelStore store;
    store.put(namedModel("persisted"));
    const std::string path = ::testing::TempDir() + "gpusc_store.bin";
    ASSERT_TRUE(store.saveToFile(path));
    const ModelStore back = ModelStore::loadFromFile(path);
    EXPECT_EQ(back.size(), 1u);
    EXPECT_NE(back.find("persisted"), nullptr);
    std::remove(path.c_str());
}

TEST(ModelStoreTest, SaveToBadPathFails)
{
    ModelStore store;
    EXPECT_FALSE(store.saveToFile("/nonexistent-dir/x/y/z.bin"));
}

TEST(ModelStoreTest, GetOrTrainCachesByConfiguration)
{
    ModelStore store;
    const OfflineTrainer trainer(OfflineTrainer::Params{
        .repetitions = 2,
        .thresholdMargin = 2.5,
        .pressDuration = SimTime::fromMs(120)});
    android::DeviceConfig cfg;
    cfg.keyboard = "go"; // smallest duplication/animation surface
    const SignatureModel &first = store.getOrTrain(cfg, trainer);
    EXPECT_EQ(store.size(), 1u);
    const SignatureModel &second = store.getOrTrain(cfg, trainer);
    EXPECT_EQ(&first, &second); // trained exactly once
}

} // namespace
} // namespace gpusc::attack
