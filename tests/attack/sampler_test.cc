/** @file Unit tests for the ioctl-based PC sampler. */

#include <gtest/gtest.h>

#include "android/device.h"
#include "attack/sampler.h"

namespace gpusc::attack {
namespace {

using namespace gpusc::sim_literals;

android::DeviceConfig
quiet()
{
    android::DeviceConfig cfg;
    cfg.notificationMeanInterval = SimTime();
    return cfg;
}

TEST(SamplerTest, OpenAndReserveSucceedsOnStockPolicy)
{
    android::Device dev(quiet());
    const int fd =
        openAndReserveCounters(dev.kgsl(), dev.attackerContext());
    EXPECT_GE(fd, 0);
    gpu::CounterTotals totals{};
    EXPECT_TRUE(PcSampler::readOnce(dev.kgsl(), fd, totals));
    dev.kgsl().close(fd);
}

TEST(SamplerTest, RbacDeniesReservation)
{
    android::Device dev(quiet());
    const kgsl::RbacPolicy rbac;
    dev.setSecurityPolicy(rbac);
    const int fd =
        openAndReserveCounters(dev.kgsl(), dev.attackerContext());
    EXPECT_LT(fd, 0);
}

TEST(SamplerTest, TicksAtTheConfiguredInterval)
{
    android::Device dev(quiet());
    dev.boot();
    PcSampler sampler(dev.kgsl(), dev.attackerContext(), dev.eq(),
                      8_ms);
    int readings = 0;
    SimTime last;
    sampler.setListener([&](const Reading &r) {
        if (readings > 0) {
            EXPECT_EQ((r.time - last), 8_ms);
        }
        last = r.time;
        ++readings;
    });
    ASSERT_TRUE(sampler.start());
    dev.runFor(100_ms);
    EXPECT_NEAR(readings, 13, 1);
    EXPECT_EQ(sampler.readCount(), std::uint64_t(readings));
}

TEST(SamplerTest, StopHaltsTicks)
{
    android::Device dev(quiet());
    dev.boot();
    PcSampler sampler(dev.kgsl(), dev.attackerContext(), dev.eq(),
                      8_ms);
    ASSERT_TRUE(sampler.start());
    dev.runFor(50_ms);
    const auto count = sampler.readCount();
    sampler.stop();
    dev.runFor(50_ms);
    EXPECT_EQ(sampler.readCount(), count);
    EXPECT_FALSE(sampler.running());
}

TEST(SamplerTest, WakeupJitterDelaysTicks)
{
    android::Device dev(quiet());
    dev.boot();
    PcSampler sampler(dev.kgsl(), dev.attackerContext(), dev.eq(),
                      8_ms);
    sampler.setWakeupJitter([] { return 8_ms; }); // doubles the gap
    int readings = 0;
    sampler.setListener([&](const Reading &) { ++readings; });
    ASSERT_TRUE(sampler.start());
    dev.runFor(160_ms);
    EXPECT_NEAR(readings, 11, 1);
}

TEST(SamplerTest, FailedStartReportsErrno)
{
    android::Device dev(quiet());
    const kgsl::RbacPolicy rbac;
    dev.setSecurityPolicy(rbac);
    PcSampler sampler(dev.kgsl(), dev.attackerContext(), dev.eq(),
                      8_ms);
    EXPECT_FALSE(sampler.start());
    EXPECT_EQ(sampler.lastErrno(), kgsl::KGSL_EPERM);
}

TEST(SamplerTest, ReadingsSeeUiRendering)
{
    android::Device dev(quiet());
    dev.boot();
    PcSampler sampler(dev.kgsl(), dev.attackerContext(), dev.eq(),
                      8_ms);
    std::uint64_t lastPrim = 0;
    sampler.setListener([&](const Reading &r) {
        lastPrim = r.totals[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ];
    });
    ASSERT_TRUE(sampler.start());
    dev.launchTargetApp(); // big redraws
    dev.runFor(300_ms);
    EXPECT_GT(lastPrim, 0u);
}

} // namespace
} // namespace gpusc::attack
