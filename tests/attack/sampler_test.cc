/** @file Unit tests for the ioctl-based PC sampler. */

#include <gtest/gtest.h>

#include "android/device.h"
#include "attack/sampler.h"

namespace gpusc::attack {
namespace {

using namespace gpusc::sim_literals;

android::DeviceConfig
quiet()
{
    android::DeviceConfig cfg;
    cfg.notificationMeanInterval = SimTime();
    return cfg;
}

TEST(SamplerTest, OpenAndReserveSucceedsOnStockPolicy)
{
    android::Device dev(quiet());
    const int fd =
        openAndReserveCounters(dev.kgsl(), dev.attackerContext());
    EXPECT_GE(fd, 0);
    gpu::CounterTotals totals{};
    EXPECT_TRUE(PcSampler::readOnce(dev.kgsl(), fd, totals));
    dev.kgsl().close(fd);
}

TEST(SamplerTest, RbacDeniesReservation)
{
    android::Device dev(quiet());
    const kgsl::RbacPolicy rbac;
    dev.setSecurityPolicy(rbac);
    const int fd =
        openAndReserveCounters(dev.kgsl(), dev.attackerContext());
    EXPECT_LT(fd, 0);
}

TEST(SamplerTest, TicksAtTheConfiguredInterval)
{
    android::Device dev(quiet());
    dev.boot();
    PcSampler sampler(dev.kgsl(), dev.attackerContext(), dev.eq(),
                      8_ms);
    int readings = 0;
    SimTime last;
    sampler.setListener([&](const Reading &r) {
        if (readings > 0) {
            EXPECT_EQ((r.time - last), 8_ms);
        }
        last = r.time;
        ++readings;
    });
    ASSERT_TRUE(sampler.start());
    dev.runFor(100_ms);
    EXPECT_NEAR(readings, 13, 1);
    EXPECT_EQ(sampler.readCount(), std::uint64_t(readings));
}

TEST(SamplerTest, StopHaltsTicks)
{
    android::Device dev(quiet());
    dev.boot();
    PcSampler sampler(dev.kgsl(), dev.attackerContext(), dev.eq(),
                      8_ms);
    ASSERT_TRUE(sampler.start());
    dev.runFor(50_ms);
    const auto count = sampler.readCount();
    sampler.stop();
    dev.runFor(50_ms);
    EXPECT_EQ(sampler.readCount(), count);
    EXPECT_FALSE(sampler.running());
}

TEST(SamplerTest, WakeupJitterDelaysTicks)
{
    android::Device dev(quiet());
    dev.boot();
    PcSampler sampler(dev.kgsl(), dev.attackerContext(), dev.eq(),
                      8_ms);
    sampler.setWakeupJitter([] { return 8_ms; }); // doubles the gap
    int readings = 0;
    sampler.setListener([&](const Reading &) { ++readings; });
    ASSERT_TRUE(sampler.start());
    dev.runFor(160_ms);
    EXPECT_NEAR(readings, 11, 1);
}

TEST(SamplerTest, FailedStartReportsErrno)
{
    android::Device dev(quiet());
    const kgsl::RbacPolicy rbac;
    dev.setSecurityPolicy(rbac);
    PcSampler sampler(dev.kgsl(), dev.attackerContext(), dev.eq(),
                      8_ms);
    EXPECT_FALSE(sampler.start());
    EXPECT_EQ(sampler.lastErrno(), kgsl::KGSL_EPERM);
}

/** Denies PERFCOUNTER_GET from the (n+1)-th call on — models a
 *  policy swap landing in the middle of the reservation loop. */
class DenyAfterNGets : public kgsl::SecurityPolicy
{
  public:
    explicit DenyAfterNGets(int allowed) : allowed_(allowed) {}

    bool
    allowIoctl(const kgsl::ProcessContext &,
               unsigned long request) const override
    {
        if (request != kgsl::IOCTL_KGSL_PERFCOUNTER_GET)
            return true;
        return ++seen_ <= allowed_;
    }

    std::string name() const override { return "deny-after-n"; }

  private:
    int allowed_;
    mutable int seen_ = 0;
};

TEST(SamplerTest, FailedStartReleasesDescriptorAndReservations)
{
    android::Device dev(quiet());
    const DenyAfterNGets policy(4); // fails on the 5th reservation
    dev.setSecurityPolicy(policy);
    const std::size_t openBefore = dev.kgsl().openFileCount();

    PcSampler sampler(dev.kgsl(), dev.attackerContext(), dev.eq(),
                      8_ms);
    EXPECT_FALSE(sampler.start());
    EXPECT_EQ(sampler.lastErrno(), kgsl::KGSL_EPERM);
    // Regression: the aborted start must not leak the fd or the four
    // reservations acquired before the denial.
    EXPECT_EQ(dev.kgsl().openFileCount(), openBefore);
    EXPECT_EQ(dev.kgsl().totalReservations(), 0u);
}

TEST(SamplerTest, StopRestartCyclesKeepOneTickChain)
{
    android::Device dev(quiet());
    dev.boot();
    PcSampler sampler(dev.kgsl(), dev.attackerContext(), dev.eq(),
                      8_ms);
    const std::size_t openBefore = dev.kgsl().openFileCount();

    for (int cycle = 0; cycle < 3; ++cycle) {
        ASSERT_TRUE(sampler.start());
        dev.runFor(40_ms);
        sampler.stop();
        EXPECT_EQ(dev.kgsl().openFileCount(), openBefore);
        EXPECT_EQ(dev.kgsl().totalReservations(), 0u);
        dev.runFor(16_ms);
    }

    // After the cycles a fresh start still ticks exactly once per
    // interval: stale callbacks from older generations must not have
    // survived to double the rate.
    int readings = 0;
    SimTime last;
    sampler.setListener([&](const Reading &r) {
        if (readings > 0) {
            EXPECT_EQ(r.time - last, 8_ms);
        }
        last = r.time;
        ++readings;
    });
    ASSERT_TRUE(sampler.start());
    dev.runFor(80_ms);
    EXPECT_NEAR(readings, 11, 1);
    sampler.stop();
}

TEST(SamplerTest, MidRunRbacDenialSuspendsThenWatchdogRecovers)
{
    android::Device dev(quiet());
    dev.boot();
    PcSampler sampler(dev.kgsl(), dev.attackerContext(), dev.eq(),
                      8_ms);
    ASSERT_TRUE(sampler.start());
    dev.runFor(50_ms);
    const std::uint64_t before = sampler.readCount();
    EXPECT_GT(before, 0u);

    // RBAC lands mid-session: reads turn EPERM and the tick chain
    // parks instead of spinning.
    const kgsl::RbacPolicy rbac;
    dev.setSecurityPolicy(rbac);
    dev.runFor(200_ms);
    EXPECT_TRUE(sampler.suspended());
    EXPECT_TRUE(sampler.running());
    const std::uint64_t during = sampler.readCount();
    EXPECT_LE(during, before + 1);
    EXPECT_GT(sampler.health().missedReads, 0u);

    // Policy reverts (profiling re-whitelisted): the watchdog notices
    // and revives the tick chain without a restart.
    const kgsl::StockPolicy stock;
    dev.setSecurityPolicy(stock);
    dev.runFor(200_ms);
    EXPECT_FALSE(sampler.suspended());
    EXPECT_GT(sampler.readCount(), during + 10);
    EXPECT_GE(sampler.health().watchdogRecoveries, 1u);
    sampler.stop();
}

TEST(SamplerTest, DegradedStartReacquiresWhenCompetitorExits)
{
    android::Device dev(quiet());
    kgsl::FaultPlan plan;
    plan.groupRegisters[kgsl::KGSL_PERFCOUNTER_GROUP_VPC] = 3;
    plan.competitors.push_back({kgsl::KGSL_PERFCOUNTER_GROUP_VPC, 3,
                                SimTime::fromMs(200)});
    kgsl::FaultInjector injector(dev.eq(), plan);
    dev.kgsl().setFaultInjector(&injector);
    dev.boot();

    PcSampler sampler(dev.kgsl(), dev.attackerContext(), dev.eq(),
                      8_ms);
    ASSERT_TRUE(sampler.start());
    // All three VPC registers are taken: degraded onto the 8 LRZ/RAS
    // counters, still sampling.
    EXPECT_TRUE(sampler.degraded());
    EXPECT_EQ(sampler.health().countersHeld, 8u);
    dev.runFor(60_ms);
    EXPECT_GT(sampler.readCount(), 0u);
    EXPECT_GT(sampler.health().busyRetries, 0u);

    // The competing profiler exits; backoff retries win the registers
    // back and the full counter set is restored.
    dev.runFor(940_ms);
    EXPECT_FALSE(sampler.degraded());
    EXPECT_EQ(sampler.health().countersHeld,
              std::uint64_t(gpu::kNumSelectedCounters));
    sampler.stop();
    dev.kgsl().setFaultInjector(nullptr);
}

TEST(SamplerTest, DeviceResetIsRecoveredWithinTheTick)
{
    android::Device dev(quiet());
    kgsl::FaultPlan plan;
    plan.deviceResets = {SimTime::fromMs(50)};
    kgsl::FaultInjector injector(dev.eq(), plan);
    dev.kgsl().setFaultInjector(&injector);
    dev.boot();

    PcSampler sampler(dev.kgsl(), dev.attackerContext(), dev.eq(),
                      8_ms);
    int readings = 0;
    sampler.setListener([&](const Reading &) { ++readings; });
    ASSERT_TRUE(sampler.start());
    dev.runFor(200_ms);

    // The ENODEV tick reopened + re-reserved and still delivered.
    EXPECT_FALSE(sampler.suspended());
    EXPECT_EQ(sampler.health().reopens, 1u);
    EXPECT_EQ(sampler.health().resetsSurvived, 1u);
    EXPECT_EQ(sampler.health().missedReads, 0u);
    EXPECT_NEAR(readings, 26, 2);
    EXPECT_EQ(injector.stats().deviceResets, 1u);
    sampler.stop();
    dev.kgsl().setFaultInjector(nullptr);
}

TEST(SamplerTest, ReadingsSeeUiRendering)
{
    android::Device dev(quiet());
    dev.boot();
    PcSampler sampler(dev.kgsl(), dev.attackerContext(), dev.eq(),
                      8_ms);
    std::uint64_t lastPrim = 0;
    sampler.setListener([&](const Reading &r) {
        lastPrim = r.totals[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ];
    });
    ASSERT_TRUE(sampler.start());
    dev.launchTargetApp(); // big redraws
    dev.runFor(300_ms);
    EXPECT_GT(lastPrim, 0u);
}

} // namespace
} // namespace gpusc::attack
