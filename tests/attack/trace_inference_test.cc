/** @file Unit tests for whole-trace inference (synthetic model). */

#include <gtest/gtest.h>

#include "attack/trace_inference.h"

namespace gpusc::attack {
namespace {

using namespace gpusc::sim_literals;

SignatureModel
toyModel()
{
    SignatureModel m;
    std::array<double, gpu::kNumSelectedCounters> scale{};
    scale.fill(1.0);
    m.setScale(scale);
    LabelSignature w;
    w.label = "w";
    w.centroid[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ] = 1000;
    m.addSignature(w);
    LabelSignature n;
    n.label = "n";
    n.centroid[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ] = 1200;
    m.addSignature(n);
    m.setThreshold(20.0);
    return m;
}

PcChange
change(SimTime t, std::int64_t prim)
{
    PcChange c;
    c.time = t;
    c.delta[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ] = prim;
    return c;
}

TEST(TraceInferenceTest, SingleKeysDecode)
{
    const SignatureModel m = toyModel();
    const TraceInference inf(m, {});
    const auto keys = inf.infer({change(1_s, 1000),
                                 change(2_s, 1200),
                                 change(3_s, 1000)});
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_EQ(TraceInference::textFrom(keys), "wnw");
}

TEST(TraceInferenceTest, SplitsAreRepaired)
{
    const SignatureModel m = toyModel();
    const TraceInference inf(m, {});
    const auto keys = inf.infer(
        {change(1_s, 700), change(1_s + 8_ms, 500)});
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0].label, "n");
    EXPECT_EQ(keys[0].time, 1_s);
}

TEST(TraceInferenceTest, GlobalViewBeatsGreedyPairing)
{
    // Three quick changes: 400, 600, 1000. Greedy Algorithm 1 pairs
    // (400+600)="w" and then accepts 1000="w" -> "ww" (wrong).
    // The true story is noise(400+600 belongs to an "n"=1200 split?
    // no): the globally best segmentation that maximises accepted
    // keys is also "ww" here, so instead verify agreement where
    // greedy is right, and superiority on a crafted case:
    // 1000 split as (980, 20): greedy accepts 980? distance 20 <= 20
    // -> accepts "w" at the first piece and drops the 20 as noise;
    // offline can choose the exact pair (980+20)="w" with distance 0.
    const SignatureModel m = toyModel();
    const TraceInference inf(m, {});
    const auto keys = inf.infer(
        {change(1_s, 980), change(1_s + 8_ms, 20)});
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0].label, "w");
    EXPECT_NEAR(keys[0].distance, 0.0, 1e-9);
}

TEST(TraceInferenceTest, TminFiltersLateDuplicates)
{
    const SignatureModel m = toyModel();
    const TraceInference inf(m, {});
    const auto keys = inf.infer(
        {change(1_s, 1000), change(1_s + 17_ms, 1000),
         change(1_s + 300_ms, 1000)});
    ASSERT_EQ(keys.size(), 2u); // the 17ms duplicate is dropped
}

TEST(TraceInferenceTest, NoiseIsIgnored)
{
    const SignatureModel m = toyModel();
    const TraceInference inf(m, {});
    const auto keys = inf.infer(
        {change(1_s, 40), change(2_s, 77), change(3_s, 123)});
    EXPECT_TRUE(keys.empty());
}

TEST(TraceInferenceTest, EmptyTrace)
{
    const SignatureModel m = toyModel();
    const TraceInference inf(m, {});
    EXPECT_TRUE(inf.infer({}).empty());
}

TEST(TraceInferenceTest, PageLabelsExcludedFromText)
{
    SignatureModel m = toyModel();
    LabelSignature page;
    page.label = pageLabel(1);
    page.centroid[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ] = 500;
    m.addSignature(page);
    const TraceInference inf(m, {});
    const auto keys = inf.infer(
        {change(1_s, 500), change(2_s, 1000)});
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(TraceInference::textFrom(keys), "w");
}

} // namespace
} // namespace gpusc::attack
