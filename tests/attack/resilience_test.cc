/**
 * @file
 * Robustness of the hardened pipeline: ChangeDetector reset/wrap
 * disambiguation, and the end-to-end acceptance scenario — the
 * eavesdropper rides out a hostile driver (power collapses, 32-bit
 * wraparound, transient errors, a device reset mid-credential) with
 * per-key accuracy within 5 points of a fault-free run, and the
 * recorded faulty session replays bit-identically.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "attack/change_detector.h"
#include "eval/experiment.h"
#include "trace/trace_reader.h"
#include "trace/trace_replayer.h"
#include "util/logging.h"

namespace gpusc::attack {
namespace {

using namespace gpusc::sim_literals;

Reading
mkReading(std::int64_t ms, std::uint64_t v)
{
    Reading r;
    r.time = SimTime::fromMs(ms);
    r.totals.fill(v);
    return r;
}

TEST(ChangeDetectorResilienceTest, ForwardDeltasStillFlowThrough)
{
    ChangeDetector det;
    EXPECT_FALSE(det.onReading(mkReading(0, 1000)).has_value());
    const auto c = det.onReading(mkReading(8, 1500));
    ASSERT_TRUE(c.has_value());
    for (std::int64_t d : c->delta)
        EXPECT_EQ(d, 500);
    EXPECT_EQ(det.resetsDetected(), 0u);
    EXPECT_EQ(det.wrapsRepaired(), 0u);
}

TEST(ChangeDetectorResilienceTest, BackwardStepIsNotAnUnderflow)
{
    ChangeDetector det;
    det.onReading(mkReading(0, 10000));
    // Power collapse: counters restart near zero. The unsigned
    // subtraction of the old code produced a ~2^64 garbage delta;
    // now the sample is dropped and the stream re-baselines.
    SimTime notified;
    det.setDiscontinuityListener([&](SimTime t) { notified = t; });
    const auto c = det.onReading(mkReading(8, 100));
    EXPECT_FALSE(c.has_value());
    EXPECT_EQ(det.resetsDetected(), 1u);
    EXPECT_EQ(notified, SimTime::fromMs(8));

    // The next pair differences cleanly off the new baseline.
    const auto c2 = det.onReading(mkReading(16, 600));
    ASSERT_TRUE(c2.has_value());
    for (std::int64_t d : c2->delta) {
        EXPECT_EQ(d, 500);
        EXPECT_GE(d, 0);
    }
}

TEST(ChangeDetectorResilienceTest, WrapNearBoundaryIsRepaired)
{
    ChangeDetector det;
    Reading a = mkReading(0, 5);
    a.totals[0] = ChangeDetector::kWrapModulus - 1000;
    det.onReading(a);
    Reading b = mkReading(8, 5);
    b.totals[0] = 24; // wrapped: real progress is 1024
    const auto c = det.onReading(b);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->delta[0], 1024);
    EXPECT_EQ(det.wrapsRepaired(), 1u);
    EXPECT_EQ(det.resetsDetected(), 0u);
}

TEST(ChangeDetectorResilienceTest, ImplausibleForwardJumpIsDropped)
{
    ChangeDetector det;
    det.onReading(mkReading(0, 0));
    // A forward leap no render job can produce (a reset while the
    // wrap32 bias was active shows up like this).
    Reading b = mkReading(8, 10);
    b.totals[3] =
        std::uint64_t(ChangeDetector::kMaxPlausibleDelta) + 1;
    EXPECT_FALSE(det.onReading(b).has_value());
    EXPECT_EQ(det.resetsDetected(), 1u);
}

TEST(ChangeDetectorResilienceTest, MixedResetSampleIsFullyDropped)
{
    ChangeDetector det;
    det.onReading(mkReading(0, 10000));
    // One counter collapsed, the rest moved plausibly: the reading
    // straddles the reset, so no partial change may leak out.
    Reading b = mkReading(8, 10400);
    b.totals[7] = 3;
    EXPECT_FALSE(det.onReading(b).has_value());
    EXPECT_EQ(det.resetsDetected(), 1u);
}

/** The ISSUE acceptance fault plan: collapse every 2 s, 32-bit wrap
 *  with a near-boundary bias, 10% transient errors, one device reset
 *  mid-session. */
kgsl::FaultPlan
acceptancePlan()
{
    kgsl::FaultPlan plan;
    plan.powerCollapseInterval = SimTime::fromMs(2000);
    plan.wrap32 = true;
    plan.wrap32Offset = 0xFFFFF000ull;
    plan.transientErrorProb = 0.1;
    plan.deviceResets = {SimTime::fromMs(5000)};
    return plan;
}

TEST(ResilienceTest, FaultyRunStaysWithinFivePointsOfFaultFree)
{
    setVerbose(false);
    ModelStore &store = ModelStore::global();

    eval::ExperimentConfig clean;
    clean.seed = 5;
    eval::ExperimentRunner cleanRunner(clean, store);
    const eval::AccuracyStats cleanStats =
        cleanRunner.runTrials(5, 8, 10);

    eval::ExperimentConfig faulty;
    faulty.seed = 5;
    faulty.faultPlan = acceptancePlan();
    eval::ExperimentRunner faultyRunner(faulty, store);
    const eval::AccuracyStats faultyStats =
        faultyRunner.runTrials(5, 8, 10);

    // The pipeline recovered on its own: per-key accuracy within 5
    // points of the fault-free twin.
    EXPECT_GE(faultyStats.charAccuracy(),
              cleanStats.charAccuracy() - 0.05);

    // Every scripted fault source actually fired...
    ASSERT_NE(faultyRunner.faultInjector(), nullptr);
    const kgsl::FaultInjector::Stats &fs =
        faultyRunner.faultInjector()->stats();
    EXPECT_GT(fs.transientErrors, 0u);
    EXPECT_GT(fs.powerCollapses, 0u);
    EXPECT_EQ(fs.deviceResets, 1u);

    // ...and every recovery path answered.
    const HealthStats h = faultyRunner.health();
    EXPECT_GT(h.transientRetries, 0u);
    EXPECT_GE(h.resetsSurvived, 1u);
    EXPECT_GT(h.streamResets, 0u);     // collapse re-baselines
    EXPECT_GE(h.wrapsRepaired, 1u);    // bias forces an early wrap
    EXPECT_EQ(h.countersHeld,
              std::uint64_t(gpu::kNumSelectedCounters));

    // The fault-free twin's health is spotless.
    EXPECT_EQ(cleanRunner.faultInjector(), nullptr);
    const HealthStats hc = cleanRunner.health();
    EXPECT_EQ(hc.transientRetries, 0u);
    EXPECT_EQ(hc.streamResets, 0u);
    EXPECT_EQ(hc.wrapsRepaired, 0u);
}

TEST(ResilienceTest, RecordedFaultySessionReplaysBitIdentically)
{
    setVerbose(false);
    const std::string path =
        ::testing::TempDir() + "faulty_session.gpct";
    ModelStore &store = ModelStore::global();

    eval::ExperimentConfig cfg;
    cfg.seed = 7;
    cfg.recordTracePath = path;
    cfg.faultPlan = acceptancePlan();
    cfg.faultPlan.deviceResets = {SimTime::fromMs(3000)};

    std::vector<eval::TrialResult> live;
    eval::ExperimentRunner runner(cfg, store);
    runner.runTrials(3, 8, 10, &live);
    ASSERT_EQ(runner.finishRecording(), trace::TraceError::None);

    // The file is a v2 trace carrying fault annotations.
    std::uint64_t records = 0;
    trace::TraceHeader header;
    std::vector<trace::TraceRecord> faults;
    ASSERT_EQ(trace::TraceReader::verifyFile(path, &records, &header,
                                             &faults),
              trace::TraceError::None);
    EXPECT_EQ(header.version, trace::kTraceVersion);
    EXPECT_FALSE(faults.empty());

    // Replay reproduces the live inference exactly, per trial: the
    // fault *effects* live in the recorded reading stream, so the
    // detached pipeline walks the same recovery decisions.
    trace::TraceReplayer replayer(store);
    ASSERT_EQ(replayer.replayFile(path), trace::TraceError::None);
    EXPECT_GT(replayer.faultsSeen(), 0u);
    ASSERT_EQ(replayer.trials().size(), live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
        EXPECT_EQ(replayer.trials()[i].truth, live[i].truth);
        EXPECT_EQ(replayer.trials()[i].inferred, live[i].inferred)
            << "trial " << i << " diverged on replay";
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace gpusc::attack
