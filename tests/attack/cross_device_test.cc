/**
 * @file
 * Parameterised end-to-end sweeps: the attack must work on every
 * registered keyboard and phone (Figs. 20/24 as properties), and the
 * new auxiliary channels must behave.
 */

#include <gtest/gtest.h>

#include "attack/eavesdropper.h"
#include "attack/model_store.h"
#include "attack/trainer.h"
#include "util/logging.h"
#include "workload/typist.h"

namespace gpusc::attack {
namespace {

using namespace gpusc::sim_literals;

ModelStore &
store()
{
    static ModelStore s;
    return s;
}

const OfflineTrainer &
quickTrainer()
{
    static const OfflineTrainer t(OfflineTrainer::Params{
        .repetitions = 3,
        .thresholdMargin = 2.5,
        .pressDuration = SimTime::fromMs(120)});
    return t;
}

std::string
stealOn(android::DeviceConfig cfg, const std::string &text)
{
    gpusc::setVerbose(false);
    cfg.notificationMeanInterval = SimTime();
    const SignatureModel &model = store().getOrTrain(cfg, quickTrainer());
    android::Device dev(cfg);
    Eavesdropper spy(dev, model);
    dev.boot();
    EXPECT_TRUE(spy.start());
    dev.launchTargetApp();
    dev.runFor(1200_ms);
    workload::Typist user(
        dev, workload::TypingModel::forSpeed(
                 workload::TypingSpeed::Medium, 5),
        7);
    const SimTime t0 = dev.eq().now();
    bool done = false;
    user.type(text, 200_ms, [&] { done = true; });
    const SimTime deadline = dev.eq().now() + SimTime::fromSeconds(60);
    while (!done && dev.eq().now() < deadline)
        dev.runFor(100_ms);
    dev.runFor(1_s);
    return spy.inferredTextBetween(t0, dev.eq().now());
}

class KeyboardSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(KeyboardSweep, StealsAFixedCredential)
{
    android::DeviceConfig cfg;
    cfg.keyboard = GetParam();
    EXPECT_EQ(stealOn(cfg, "s3cret"), "s3cret") << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllKeyboards, KeyboardSweep,
                         ::testing::ValuesIn(android::keyboardNames()));

class PhoneSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PhoneSweep, StealsAFixedCredential)
{
    android::DeviceConfig cfg;
    cfg.phone = GetParam();
    EXPECT_EQ(stealOn(cfg, "pin42"), "pin42") << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllPhones, PhoneSweep,
                         ::testing::ValuesIn(android::phoneIds()));

TEST(AuxChannelsTest, LengthLeaksEvenWithPopupsDisabled)
{
    gpusc::setVerbose(false);
    android::DeviceConfig train;
    const SignatureModel &model =
        store().getOrTrain(train, quickTrainer());

    android::DeviceConfig cfg;
    cfg.popupsDisabled = true;
    cfg.notificationMeanInterval = SimTime();
    android::Device dev(cfg);
    Eavesdropper spy(dev, model);
    dev.boot();
    ASSERT_TRUE(spy.start());
    dev.launchTargetApp();
    dev.runFor(1200_ms);
    workload::Typist user(
        dev, workload::TypingModel::forVolunteer(1, 3), 5);
    bool done = false;
    user.type("elevenchars", 200_ms, [&] { done = true; });
    while (!done)
        dev.runFor(100_ms);
    dev.runFor(1_s);
    EXPECT_TRUE(spy.inferredText().empty());
    EXPECT_EQ(spy.maxObservedFieldLength(), 11);
}

TEST(AuxChannelsTest, ExfiltrationIsTinyComparedToRawStream)
{
    gpusc::setVerbose(false);
    android::DeviceConfig cfg;
    cfg.notificationMeanInterval = SimTime();
    const SignatureModel &model = store().getOrTrain(cfg, quickTrainer());
    android::Device dev(cfg);
    Eavesdropper spy(dev, model);
    dev.boot();
    ASSERT_TRUE(spy.start());
    dev.launchTargetApp();
    dev.runFor(1200_ms);
    workload::Typist user(
        dev, workload::TypingModel::forVolunteer(0, 9), 3);
    bool done = false;
    user.type("tinyloot", 200_ms, [&] { done = true; });
    while (!done)
        dev.runFor(100_ms);
    dev.runFor(1_s);
    EXPECT_GT(spy.exfiltrationBytes(), 0u);
    // Results-only exfiltration is orders of magnitude below the raw
    // counter stream the attacker would otherwise have to ship.
    EXPECT_LT(spy.exfiltrationBytes() * 100, spy.rawCounterBytes());
}

} // namespace
} // namespace gpusc::attack
