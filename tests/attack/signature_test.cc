/** @file Unit tests for signature models (synthetic, no training). */

#include <gtest/gtest.h>

#include <cmath>

#include "attack/signature.h"

namespace gpusc::attack {
namespace {

/** A small hand-built model with unit scales. */
SignatureModel
toyModel()
{
    SignatureModel m;
    m.setModelKey("toy/config");
    std::array<double, gpu::kNumSelectedCounters> scale{};
    scale.fill(1.0);
    m.setScale(scale);

    LabelSignature a;
    a.label = "a";
    a.centroid[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ] = 100;
    a.centroid[gpu::RAS_8X4_TILES] = 50;
    m.addSignature(a);

    LabelSignature b;
    b.label = "b";
    b.centroid[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ] = 200;
    b.centroid[gpu::RAS_8X4_TILES] = 80;
    m.addSignature(b);

    LabelSignature page;
    page.label = pageLabel(0);
    page.centroid[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ] = 500;
    m.addSignature(page);

    m.setThreshold(10.0);
    m.setEchoCutoff(1000.0);

    gpu::CounterVec base{}, inc{};
    base[gpu::RAS_SUPERTILE_ACTIVE_CYCLES] = 1000;
    base[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ] = 6;
    inc[gpu::RAS_SUPERTILE_ACTIVE_CYCLES] = 100;
    inc[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ] = 2;
    m.setEchoLine(base, inc, 2.0);
    return m;
}

gpu::CounterVec
vec(std::int64_t prim, std::int64_t ras8x4 = 0)
{
    gpu::CounterVec v{};
    v[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ] = prim;
    v[gpu::RAS_8X4_TILES] = ras8x4;
    return v;
}

TEST(PageLabelTest, FormatAndDetection)
{
    EXPECT_EQ(pageLabel(0), "PAGE:lower");
    EXPECT_EQ(pageLabel(1), "PAGE:upper");
    EXPECT_EQ(pageLabel(2), "PAGE:symbols");
    EXPECT_TRUE(isPageLabel("PAGE:lower"));
    EXPECT_FALSE(isPageLabel("a"));
    EXPECT_FALSE(isPageLabel("xPAGE:lower"));
}

TEST(SignatureModelTest, ClassifyPicksNearest)
{
    const SignatureModel m = toyModel();
    const auto match = m.classify(vec(105, 52));
    ASSERT_NE(match.sig, nullptr);
    EXPECT_EQ(match.sig->label, "a");
    EXPECT_NEAR(match.distance, std::sqrt(25.0 + 4.0), 1e-9);
    EXPECT_TRUE(match.accepted(m.threshold()));
}

TEST(SignatureModelTest, AcceptRespectsThreshold)
{
    const SignatureModel m = toyModel();
    EXPECT_EQ(m.accept(vec(100, 50)).value_or("?"), "a");
    EXPECT_FALSE(m.accept(vec(150, 65)).has_value()); // between a/b
}

TEST(SignatureModelTest, MinInterClassDistance)
{
    const SignatureModel m = toyModel();
    // a-b distance = sqrt(100^2 + 30^2); page is farther.
    EXPECT_NEAR(m.minInterClassDistance(),
                std::sqrt(100.0 * 100.0 + 30.0 * 30.0), 1e-9);
}

TEST(SignatureModelTest, ScaleWeightsTheMetric)
{
    SignatureModel m = toyModel();
    auto scale = m.scale();
    scale[gpu::RAS_8X4_TILES] = 0.0; // ignore that dim
    m.setScale(scale);
    const auto match = m.classify(vec(100, 9999));
    EXPECT_EQ(match.sig->label, "a");
    EXPECT_NEAR(match.distance, 0.0, 1e-9);
}

TEST(SignatureModelTest, ClassifyRobustSubtractsBlink)
{
    SignatureModel m = toyModel();
    gpu::CounterVec blink{};
    blink[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ] = 2;
    blink[gpu::LRZ_PARTIAL_8X8_TILES] = 12;
    m.setBlinkVariants({blink});
    // A popup frame merged with a blink: plain classify sees the
    // displacement, robust classify removes it.
    gpu::CounterVec merged = vec(102, 50);
    merged[gpu::LRZ_PARTIAL_8X8_TILES] = 12;
    EXPECT_GT(m.classify(merged).distance, 10.0);
    const auto robust = m.classifyRobust(merged);
    EXPECT_EQ(robust.sig->label, "a");
    EXPECT_NEAR(robust.distance, 0.0, 1e-9);
}

TEST(SignatureModelTest, EchoLineDecodesLengths)
{
    const SignatureModel m = toyModel();
    ASSERT_TRUE(m.hasEchoModel());
    for (int len = 0; len <= 20; ++len) {
        gpu::CounterVec e{};
        e[gpu::RAS_SUPERTILE_ACTIVE_CYCLES] = 1000 + 100 * len;
        e[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ] = 6 + 2 * len;
        EXPECT_EQ(m.decodeEchoLength(e).value_or(-1), len);
    }
}

TEST(SignatureModelTest, EchoLineRejectsOffLinePoints)
{
    const SignatureModel m = toyModel();
    gpu::CounterVec junk{};
    junk[gpu::RAS_SUPERTILE_ACTIVE_CYCLES] = 1250;
    junk[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ] = 300; // way off the line
    EXPECT_FALSE(m.decodeEchoLength(junk).has_value());
}

TEST(SignatureModelTest, EchoResidualReported)
{
    const SignatureModel m = toyModel();
    gpu::CounterVec e{};
    e[gpu::RAS_SUPERTILE_ACTIVE_CYCLES] = 1100;
    e[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ] = 9; // one off the fit
    double res = -1;
    (void)m.decodeEchoLength(e, &res);
    EXPECT_GT(res, 0.0);
}

TEST(SignatureModelTest, SerializationRoundTrips)
{
    SignatureModel m = toyModel();
    gpu::CounterVec blink{};
    blink[gpu::LRZ_PARTIAL_8X8_TILES] = 12;
    m.setBlinkVariants({blink});

    const auto blob = m.serialize();
    EXPECT_EQ(blob.size(), m.byteSize());
    const SignatureModel back =
        SignatureModel::deserialize(blob.data(), blob.size());
    EXPECT_TRUE(m == back);
    EXPECT_EQ(back.modelKey(), "toy/config");
    EXPECT_NEAR(back.threshold(), m.threshold(), 1e-6);
    EXPECT_NEAR(back.echoTol(), m.echoTol(), 1e-6);
    EXPECT_EQ(back.blinkVariants().size(), 1u);
    EXPECT_EQ(back.echoInc(), m.echoInc());
    // The deserialised model classifies identically.
    EXPECT_EQ(back.accept(vec(100, 50)).value_or("?"), "a");
}

TEST(SignatureModelDeathTest, TruncatedBlobIsFatal)
{
    const auto blob = toyModel().serialize();
    EXPECT_DEATH((void)SignatureModel::deserialize(blob.data(),
                                                   blob.size() / 2),
                 "truncated");
}

TEST(SignatureModelTest, NoEchoModelMeansNoDecode)
{
    SignatureModel m;
    EXPECT_FALSE(m.hasEchoModel());
    EXPECT_FALSE(m.decodeEchoLength(vec(10)).has_value());
}

} // namespace
} // namespace gpusc::attack
