/**
 * @file
 * Integration tests: offline training + full eavesdropping pipeline
 * on the simulated device. The model is trained once per process and
 * shared across tests.
 */

#include <gtest/gtest.h>

#include "util/logging.h"

#include "attack/eavesdropper.h"
#include "attack/model_store.h"
#include "attack/trainer.h"
#include "workload/typist.h"

namespace gpusc::attack {
namespace {

using namespace gpusc::sim_literals;

android::DeviceConfig
baseConfig()
{
    android::DeviceConfig cfg;
    cfg.phone = "oneplus8pro";
    cfg.keyboard = "gboard";
    cfg.app = "chase";
    return cfg;
}

const SignatureModel &
trainedModel()
{
    static const SignatureModel model = [] {
        gpusc::setVerbose(false);
        return OfflineTrainer().train(baseConfig());
    }();
    return model;
}

TEST(TrainerTest, ModelCoversAllLabels)
{
    const SignatureModel &m = trainedModel();
    // 26 lower + 26 upper + 10 digits + 18 symbols + 3 page labels.
    EXPECT_EQ(m.signatures().size(), 83u);
    int pageLabels = 0;
    for (const auto &sig : m.signatures()) {
        pageLabels += isPageLabel(sig.label);
        EXPECT_FALSE(gpu::isZero(sig.centroid))
            << "empty centroid for " << sig.label;
    }
    EXPECT_EQ(pageLabels, 3);
}

TEST(TrainerTest, ModelIsWellFormed)
{
    const SignatureModel &m = trainedModel();
    EXPECT_GT(m.threshold(), 0.0);
    EXPECT_GT(m.minInterClassDistance(), 0.0);
    EXPECT_TRUE(m.hasEchoModel());
    EXPECT_GT(m.echoCutoff(), 0.0);
    EXPECT_FALSE(m.blinkVariants().empty());
    for (double s : m.scale())
        EXPECT_GT(s, 0.0);
    EXPECT_EQ(m.modelKey(),
              "oneplus8pro/adreno650/FHD+@60/gboard/android11/chase");
}

TEST(TrainerTest, ModelSizeMatchesPaperBallpark)
{
    // §7.6: ~3.59 kB per model; ours must stay in the same ballpark.
    const double kb = double(trainedModel().byteSize()) / 1024.0;
    EXPECT_GT(kb, 2.0);
    EXPECT_LT(kb, 8.0);
}

TEST(TrainerTest, SignaturesSeparateFromCentroidNoise)
{
    const SignatureModel &m = trainedModel();
    // Every centroid classifies to itself with near-zero distance.
    for (const auto &sig : m.signatures()) {
        const auto match = m.classify(sig.centroid);
        EXPECT_EQ(match.sig->label, sig.label);
        EXPECT_LT(match.distance, m.threshold());
    }
}

class EavesdropTest : public ::testing::Test
{
  protected:
    std::string
    steal(const std::string &text,
          android::DeviceConfig cfg = baseConfig(),
          Eavesdropper::Params params = {})
    {
        cfg.notificationMeanInterval = SimTime();
        android::Device dev(cfg);
        Eavesdropper spy(dev, trainedModel(), params);
        dev.boot();
        if (!spy.start())
            return "<EPERM>";
        dev.launchTargetApp();
        dev.runFor(1200_ms);
        workload::Typist user(
            dev, workload::TypingModel::forVolunteer(1, 3), 9);
        const SimTime t0 = dev.eq().now();
        bool done = false;
        user.type(text, 200_ms, [&] { done = true; });
        const SimTime deadline =
            dev.eq().now() + SimTime::fromSeconds(60);
        while (!done && dev.eq().now() < deadline)
            dev.runFor(100_ms);
        dev.runFor(1_s);
        return spy.inferredTextBetween(t0, dev.eq().now());
    }
};

TEST_F(EavesdropTest, RecoversLowercaseText)
{
    EXPECT_EQ(steal("monkey"), "monkey");
}

TEST_F(EavesdropTest, RecoversMixedText)
{
    EXPECT_EQ(steal("Pa55w,rd"), "Pa55w,rd");
}

TEST_F(EavesdropTest, RecoversSymbolHeavyText)
{
    EXPECT_EQ(steal("a@b#c$d"), "a@b#c$d");
}

TEST_F(EavesdropTest, RbacBlocksTheAttack)
{
    android::DeviceConfig cfg = baseConfig();
    cfg.notificationMeanInterval = SimTime();
    android::Device dev(cfg);
    const kgsl::RbacPolicy rbac;
    dev.setSecurityPolicy(rbac);
    Eavesdropper spy(dev, trainedModel());
    dev.boot();
    EXPECT_FALSE(spy.start());
    EXPECT_EQ(spy.lastErrno(), kgsl::KGSL_EPERM);
}

TEST_F(EavesdropTest, PopupsDisabledHidesContent)
{
    android::DeviceConfig cfg = baseConfig();
    cfg.popupsDisabled = true;
    EXPECT_EQ(steal("hunter2", cfg), "");
}

TEST_F(EavesdropTest, BackspaceCorrectionsAreApplied)
{
    android::DeviceConfig cfg = baseConfig();
    cfg.notificationMeanInterval = SimTime();
    android::Device dev(cfg);
    Eavesdropper spy(dev, trainedModel());
    dev.boot();
    ASSERT_TRUE(spy.start());
    dev.launchTargetApp();
    dev.runFor(1200_ms);

    workload::Typist user(
        dev, workload::TypingModel::forVolunteer(2, 5), 11);
    user.setTypoProb(0.35);
    const SimTime t0 = dev.eq().now();
    bool done = false;
    user.type("abcdefgh", 200_ms, [&] { done = true; });
    while (!done)
        dev.runFor(100_ms);
    dev.runFor(1_s);
    EXPECT_EQ(spy.inferredTextBetween(t0, dev.eq().now()),
              "abcdefgh");
}

TEST_F(EavesdropTest, EventsAreTimeOrdered)
{
    android::DeviceConfig cfg = baseConfig();
    cfg.notificationMeanInterval = SimTime();
    android::Device dev(cfg);
    Eavesdropper spy(dev, trainedModel());
    dev.boot();
    ASSERT_TRUE(spy.start());
    dev.launchTargetApp();
    dev.runFor(1200_ms);
    workload::Typist user(
        dev, workload::TypingModel::forVolunteer(0, 7), 13);
    bool done = false;
    user.type("xyz12", 200_ms, [&] { done = true; });
    while (!done)
        dev.runFor(100_ms);
    dev.runFor(1_s);
    const auto &events = spy.events();
    ASSERT_FALSE(events.empty());
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].time, events[i - 1].time);
}

TEST_F(EavesdropTest, DeviceRecognitionPicksTheRightModel)
{
    ModelStore store;
    store.put(trainedModel());
    // A decoy model with very different geometry.
    android::DeviceConfig decoyCfg = baseConfig();
    decoyCfg.phone = "pixel2";
    decoyCfg.keyboard = "go";
    store.getOrTrain(decoyCfg,
                     OfflineTrainer(OfflineTrainer::Params{
                         .repetitions = 2,
                         .thresholdMargin = 2.5,
                         .pressDuration = SimTime::fromMs(120)}));
    ASSERT_EQ(store.size(), 2u);

    android::DeviceConfig cfg = baseConfig();
    cfg.notificationMeanInterval = SimTime();
    android::Device dev(cfg);
    Eavesdropper spy(dev, store, Eavesdropper::Params{});
    dev.boot();
    ASSERT_TRUE(spy.start());
    dev.launchTargetApp();
    dev.runFor(1200_ms);
    workload::Typist user(
        dev, workload::TypingModel::forVolunteer(0, 9), 15);
    bool done = false;
    user.type("recognise", 200_ms, [&] { done = true; });
    while (!done)
        dev.runFor(100_ms);
    dev.runFor(1_s);
    ASSERT_NE(spy.activeModel(), nullptr);
    EXPECT_EQ(spy.activeModel()->modelKey(),
              trainedModel().modelKey());
}

TEST_F(EavesdropTest, SamplerOverheadIsAccounted)
{
    android::DeviceConfig cfg = baseConfig();
    cfg.notificationMeanInterval = SimTime();
    android::Device dev(cfg);
    Eavesdropper spy(dev, trainedModel());
    dev.boot();
    ASSERT_TRUE(spy.start());
    dev.runFor(10_s);
    // 8ms sampling -> ~125 reads/s -> power accounting moves.
    EXPECT_NEAR(double(spy.sampler().readCount()), 1250.0, 15.0);
    EXPECT_GT(dev.power().extraMah(), 0.0);
}

} // namespace
} // namespace gpusc::attack
