/** @file Unit tests for the named-metric registry and JSON export. */

#include <gtest/gtest.h>

#include "obs/metric_registry.h"

namespace gpusc::obs {
namespace {

TEST(MetricRegistryTest, CounterReferencesAreStableAndAccumulate)
{
    MetricRegistry reg;
    Counter &a = reg.counter("pipeline.readings_in");
    a.inc();
    a.inc(41);
    // Re-resolving the same name yields the same object.
    Counter &b = reg.counter("pipeline.readings_in");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 42u);
    // Resolving other metrics must not move existing ones.
    for (int i = 0; i < 100; ++i)
        reg.counter("filler." + std::to_string(i));
    EXPECT_EQ(&reg.counter("pipeline.readings_in"), &a);
    EXPECT_EQ(a.value(), 42u);
}

TEST(MetricRegistryTest, GaugeHoldsTheLatestValue)
{
    MetricRegistry reg;
    Gauge &g = reg.gauge("sampler.counters_held");
    EXPECT_EQ(g.value(), 0.0);
    g.set(6.0);
    g.set(4.0);
    EXPECT_EQ(reg.gauge("sampler.counters_held").value(), 4.0);
}

TEST(MetricRegistryTest, HistogramUnitIsRecordedOnFirstResolution)
{
    MetricRegistry reg;
    reg.histogram("latency.classify", "ns");
    // Later resolutions cannot change the unit.
    reg.histogram("latency.classify", "furlongs");
    EXPECT_EQ(reg.histogramUnit("latency.classify"), "ns");
}

TEST(MetricRegistryTest, MergeFoldsEveryMetricKind)
{
    MetricRegistry a, b;
    a.counter("c").inc(10);
    b.counter("c").inc(5);
    b.counter("only_b").inc(7);
    a.gauge("g").set(1.0);
    b.gauge("g").set(2.0);
    a.histogram("latency.x").add(100);
    b.histogram("latency.x").add(300);

    a.merge(b);
    EXPECT_EQ(a.counter("c").value(), 15u);
    EXPECT_EQ(a.counter("only_b").value(), 7u);
    // Gauges are levels, not sums: the merged-in value wins.
    EXPECT_EQ(a.gauge("g").value(), 2.0);
    EXPECT_EQ(a.histogram("latency.x").count(), 2u);
    EXPECT_EQ(a.histogram("latency.x").min(), 100u);
    EXPECT_EQ(a.histogram("latency.x").max(), 300u);
}

TEST(MetricRegistryTest, MergedLatencyCoversOnlyLatencyHistograms)
{
    MetricRegistry reg;
    reg.histogram("latency.change_detect").add(10);
    reg.histogram("latency.classify").add(20);
    reg.histogram("latency.classify").add(30);
    reg.histogram("interval.reading", "us").add(999);

    const LogHistogram all = reg.mergedLatency();
    EXPECT_EQ(all.count(), 3u);
    EXPECT_EQ(all.min(), 10u);
    EXPECT_EQ(all.max(), 30u);
}

TEST(MetricRegistryTest, ToJsonContainsEveryMetric)
{
    MetricRegistry reg;
    reg.counter("pipeline.keys").inc(3);
    reg.gauge("sampler.counters_held").set(6);
    reg.histogram("latency.classify").add(1500);

    const std::string json = reg.toJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"pipeline.keys\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"sampler.counters_held\""),
              std::string::npos);
    EXPECT_NE(json.find("\"latency.classify\""), std::string::npos);
    EXPECT_NE(json.find("\"unit\": \"ns\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricRegistryTest, JsonStringEscaping)
{
    std::string out;
    appendJsonString(out, "a\"b\\c\n\t\x01z");
    EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\\t\\u0001z\"");
}

TEST(MetricRegistryTest, JsonNumbersRoundTrip)
{
    std::string out;
    appendJsonNumber(out, 0.125);
    EXPECT_EQ(std::stod(out), 0.125);
    out.clear();
    appendJsonNumber(out, 1234567.0);
    EXPECT_EQ(std::stod(out), 1234567.0);
}

TEST(MetricRegistryTest, CheckMergeUnitsReportsTheFirstConflict)
{
    MetricRegistry a, b;
    a.histogram("latency.classify", "ns").add(1);
    b.histogram("latency.classify", "ns").add(2);
    EXPECT_FALSE(a.checkMergeUnits(b).has_value());

    MetricRegistry c;
    c.histogram("latency.classify", "us").add(3);
    const std::optional<MetricRegistry::UnitMismatch> clash =
        a.checkMergeUnits(c);
    ASSERT_TRUE(clash.has_value());
    EXPECT_EQ(clash->metric, "latency.classify");
    EXPECT_EQ(clash->haveUnit, "ns");
    EXPECT_EQ(clash->otherUnit, "us");

    // Disjoint names never conflict, whatever their units.
    MetricRegistry d;
    d.histogram("latency.other", "us").add(4);
    EXPECT_FALSE(a.checkMergeUnits(d).has_value());
}

TEST(MetricRegistryDeathTest, MergeHardFailsOnUnitMismatch)
{
    MetricRegistry a, b;
    a.histogram("latency.classify", "ns").add(1);
    b.histogram("latency.classify", "us").add(2);
    EXPECT_DEATH(a.merge(b), "latency.classify");
}

} // namespace
} // namespace gpusc::obs
