/**
 * @file
 * Smoke tests for the live plane's HTTP exposition endpoint, driven
 * through a raw loopback socket exactly the way curl or a Prometheus
 * scraper would hit it.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>

#include "obs/live/http_endpoint.h"

namespace gpusc::obs::live {
namespace {

/** Blocking HTTP/1.0 GET of @p path; returns the raw response. */
std::string
httpGet(std::uint16_t port, const std::string &path)
{
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (connect(fd, reinterpret_cast<sockaddr *>(&addr),
                sizeof(addr)) != 0) {
        close(fd);
        return {};
    }
    const std::string req =
        "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
    (void)!write(fd, req.data(), req.size());
    std::string out;
    char buf[4096];
    ssize_t n;
    while ((n = read(fd, buf, sizeof(buf))) > 0)
        out.append(buf, std::size_t(n));
    close(fd);
    return out;
}

TEST(HttpEndpointTest, ServesSnapshotsOverEveryRoute)
{
    HttpEndpoint ep;
    ASSERT_TRUE(ep.start(0)); // 0: ephemeral port
    ASSERT_TRUE(ep.running());
    ASSERT_NE(ep.port(), 0);

    // /healthz answers even before a snapshot is published...
    EXPECT_NE(httpGet(ep.port(), "/healthz").find("200 OK"),
              std::string::npos);
    // ...while data routes answer 503 until the first publish.
    EXPECT_NE(httpGet(ep.port(), "/metrics").find("503"),
              std::string::npos);

    auto snap = std::make_shared<EndpointSnapshot>();
    snap->metricsText = "gpusc_stream_readings_offered_total 17\n";
    snap->metricsJson = "{\"counters\": {}}";
    snap->sessionsJson = "{\"sessions\": []}";
    snap->alertsJson = "{\"active\": 0, \"alerts\": []}";
    ep.publish(snap);

    const std::string metrics = httpGet(ep.port(), "/metrics");
    EXPECT_NE(metrics.find("200 OK"), std::string::npos);
    EXPECT_NE(metrics.find("gpusc_stream_readings_offered_total 17"),
              std::string::npos);
    EXPECT_NE(httpGet(ep.port(), "/metrics.json")
                  .find("{\"counters\": {}}"),
              std::string::npos);
    EXPECT_NE(httpGet(ep.port(), "/sessions")
                  .find("{\"sessions\": []}"),
              std::string::npos);
    EXPECT_NE(httpGet(ep.port(), "/alerts").find("\"active\": 0"),
              std::string::npos);
    EXPECT_NE(httpGet(ep.port(), "/nope").find("404"),
              std::string::npos);
    EXPECT_GE(ep.requestsServed(), 7u);

    // Publishing a newer snapshot swaps what scrapers see.
    auto snap2 = std::make_shared<EndpointSnapshot>();
    snap2->metricsText = "gpusc_stream_readings_offered_total 40\n";
    ep.publish(snap2);
    EXPECT_NE(httpGet(ep.port(), "/metrics")
                  .find("gpusc_stream_readings_offered_total 40"),
              std::string::npos);

    ep.stop();
    EXPECT_FALSE(ep.running());
    ep.stop(); // idempotent
}

TEST(HttpEndpointTest, StopWithoutStartIsHarmless)
{
    HttpEndpoint ep;
    EXPECT_FALSE(ep.running());
    ep.stop();
}

} // namespace
} // namespace gpusc::obs::live
