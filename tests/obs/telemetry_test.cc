/** @file Unit tests for the Telemetry context and StageTimer. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/telemetry.h"

namespace gpusc::obs {
namespace {

TEST(StageTimerTest, DefaultConstructedTimerIsInert)
{
    const StageTimer t;
    EXPECT_FALSE(t.enabled());
    // Scopes and notes on a disabled timer must be harmless no-ops.
    {
        const StageTimer::Scope s = t.scoped(SimTime::fromMs(1));
    }
    t.note(SimTime::fromMs(2), 500);
}

TEST(StageTimerTest, NullTelemetryGivesAnInertTimer)
{
    const StageTimer t(nullptr, "attack.classify");
    EXPECT_FALSE(t.enabled());
    t.note(SimTime::fromMs(1), 500);
}

TEST(StageTimerTest, ScopedMeasurementRecordsHistogramAndSpan)
{
    Telemetry tel;
    const StageTimer t(&tel, "attack.classify");
    EXPECT_TRUE(t.enabled());
    {
        const StageTimer::Scope s = t.scoped(SimTime::fromMs(7));
    }
    EXPECT_EQ(tel.metrics.histogram("latency.attack.classify").count(),
              1u);
    EXPECT_EQ(tel.metrics.histogramUnit("latency.attack.classify"),
              "ns");
    ASSERT_EQ(tel.tracer.size(), 1u);
    const Span s = tel.tracer.snapshot()[0];
    EXPECT_EQ(s.at, SimTime::fromMs(7));
    EXPECT_STREQ(s.name, "attack.classify");
    EXPECT_GE(s.hostNs, 0);
}

TEST(StageTimerTest, ScopeEndIsIdempotent)
{
    Telemetry tel;
    const StageTimer t(&tel, "stage");
    StageTimer::Scope s = t.scoped(SimTime::fromMs(1));
    s.end();
    s.end(); // second end must not double-record
    EXPECT_EQ(tel.metrics.histogram("latency.stage").count(), 1u);
    EXPECT_EQ(tel.tracer.size(), 1u);
}

TEST(StageTimerTest, NoteRecordsAPreMeasuredDuration)
{
    Telemetry tel;
    const StageTimer t(&tel, "stage");
    t.note(SimTime::fromMs(3), 1234);
    t.note(SimTime::fromMs(4), -5); // negative clamps to zero
    const LogHistogram &h = tel.metrics.histogram("latency.stage");
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.max(), 1234u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(tel.tracer.recorded(), 2u);
}

TEST(TelemetryTest, MetricsJsonBundlesEverySection)
{
    Telemetry tel;
    tel.metrics.counter("pipeline.keys").inc(2);
    const StageTimer t(&tel, "stage");
    t.note(SimTime::fromMs(1), 10);
    tel.audit.record(SimTime::fromMs(1), Stage::Eavesdropper,
                     Decision::AcceptedKey, "a", 0.5);

    const std::string json = tel.metricsJson();
    for (const char *key :
         {"\"counters\"", "\"gauges\"", "\"histograms\"", "\"funnel\"",
          "\"spans\"", "\"audit\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
    EXPECT_NE(json.find("\"pipeline.keys\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"changes_in\": 1"), std::string::npos);
}

TEST(TelemetryTest, RingCapacitiesComeFromParams)
{
    Telemetry::Params p;
    p.spanCapacity = 2;
    p.auditCapacity = 3;
    Telemetry tel(p);
    const StageTimer t(&tel, "stage");
    for (int i = 0; i < 5; ++i) {
        t.note(SimTime::fromMs(i), 1);
        tel.audit.record(SimTime::fromMs(i), Stage::Inference,
                         Decision::NoiseRejected);
    }
    EXPECT_EQ(tel.tracer.size(), 2u);
    EXPECT_EQ(tel.tracer.dropped(), 3u);
    EXPECT_EQ(tel.audit.snapshot().size(), 3u);
    EXPECT_EQ(tel.audit.dropped(), 2u);
    EXPECT_EQ(tel.audit.count(Decision::NoiseRejected), 5u);
}

TEST(TelemetryTest, WriteFileRoundTripsAndFailsCleanly)
{
    const std::string path = "/tmp/gpusc_telemetry_test.json";
    EXPECT_TRUE(Telemetry::writeFile(path, "{\"ok\": true}\n"));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), "{\"ok\": true}\n");
    std::remove(path.c_str());

    EXPECT_FALSE(Telemetry::writeFile(
        "/nonexistent-dir/gpusc_telemetry_test.json", "x"));
}

} // namespace
} // namespace gpusc::obs
