/**
 * @file
 * Unit tests for the live plane's TimeSeries: delta attribution into
 * fine windows, gauge level semantics, lossless multi-level roll-up
 * (the reconciliation identity), and bounded retention.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/live/time_series.h"

namespace gpusc::obs::live {
namespace {

TimeSeries::Params
smallParams()
{
    TimeSeries::Params p;
    p.fineWidth = SimTime::fromMs(100);
    p.fineCapacity = 4;
    p.coarsePerFine = 2;
    p.coarseCapacity = 2;
    return p;
}

TEST(TimeSeriesTest, DeltasAttributeToTheWindowContainingTheTick)
{
    TimeSeries ts(smallParams());
    MetricRegistry reg;
    reg.counter("a").inc(3);
    ts.observe(SimTime::fromMs(10), reg);
    reg.counter("a").inc(4);
    ts.observe(SimTime::fromMs(50), reg);

    ASSERT_NE(ts.openWindow(), nullptr);
    EXPECT_EQ(ts.openWindow()->start, SimTime::fromMs(0));
    EXPECT_EQ(ts.openWindow()->counterDelta("a"), 7u);
    EXPECT_EQ(ts.windowsClosed(), 0u);

    // Crossing the boundary closes window [0,100) and opens [100,200);
    // growth since the last tick lands in the window containing `now`.
    reg.counter("a").inc(5);
    ts.observe(SimTime::fromMs(150), reg);
    EXPECT_EQ(ts.windowsClosed(), 1u);
    ASSERT_EQ(ts.windows().size(), 1u);
    EXPECT_EQ(ts.windows()[0]->counterDelta("a"), 7u);
    EXPECT_EQ(ts.windows()[0]->level, WindowLevel::Fine);
    EXPECT_EQ(ts.openWindow()->counterDelta("a"), 5u);
}

TEST(TimeSeriesTest, SkippedWindowsCloseEmptyButCarryGaugeLevels)
{
    TimeSeries ts(smallParams());
    MetricRegistry reg;
    reg.gauge("level").set(42.0);
    reg.counter("a").inc(1);
    ts.observe(SimTime::fromMs(10), reg);
    // Jump three windows ahead: [0,100) closes with the delta, the
    // two skipped windows close empty but still report the gauge.
    ts.observe(SimTime::fromMs(310), reg);
    EXPECT_EQ(ts.windowsClosed(), 3u);
    const std::vector<const TsWindow *> ws = ts.windows();
    ASSERT_EQ(ws.size(), 3u);
    EXPECT_EQ(ws[0]->counterDelta("a"), 1u);
    EXPECT_EQ(ws[1]->counterDelta("a"), 0u);
    ASSERT_EQ(ws[1]->gauges.count("level"), 1u);
    EXPECT_DOUBLE_EQ(ws[1]->gauges.at("level"), 42.0);
}

TEST(TimeSeriesTest, WindowListenerSeesEveryCloseAtFineLevel)
{
    TimeSeries ts(smallParams());
    MetricRegistry reg;
    std::vector<SimTime> starts;
    ts.setWindowListener([&](const TsWindow &w) {
        EXPECT_EQ(w.level, WindowLevel::Fine);
        starts.push_back(w.start);
    });
    ts.observe(SimTime::fromMs(0), reg);
    ts.observe(SimTime::fromMs(250), reg);
    ts.finish();
    ASSERT_EQ(starts.size(), 3u);
    EXPECT_EQ(starts[0], SimTime::fromMs(0));
    EXPECT_EQ(starts[1], SimTime::fromMs(100));
    EXPECT_EQ(starts[2], SimTime::fromMs(200));
}

TEST(TimeSeriesTest, RollUpIsLosslessAndRetentionIsBounded)
{
    // Drive far past both ring capacities; the reconciliation
    // identity must hold exactly: sum over every retained window
    // (archive + coarse + fine + open) == the cumulative value.
    TimeSeries ts(smallParams());
    MetricRegistry reg;
    std::uint64_t expected = 0;
    for (int i = 0; i < 100; ++i) {
        reg.counter("a").inc(std::uint64_t(i % 7));
        expected += std::uint64_t(i % 7);
        reg.counter("b").inc(1);
        ts.observe(SimTime::fromMs(100 * i + 10), reg);
    }
    EXPECT_GT(ts.rollupsFine(), 0u);
    EXPECT_GT(ts.rollupsCoarse(), 0u);
    // Retention: one archive + bounded coarse ring + bounded fine ring.
    const TimeSeries::Params &p = ts.params();
    EXPECT_LE(ts.windows().size(),
              1 + p.coarseCapacity + p.fineCapacity);

    const std::map<std::string, std::uint64_t> totals =
        ts.totalCounterDeltas();
    EXPECT_EQ(totals.at("a"), expected);
    EXPECT_EQ(totals.at("b"), 100u); // first tick baselines at zero
    EXPECT_EQ(totals.at("a"), ts.cumulative().at("a"));
    EXPECT_EQ(totals.at("b"), ts.cumulative().at("b"));

    // Levels appear oldest-first: archive, then coarse, then fine.
    const std::vector<const TsWindow *> ws = ts.windows();
    EXPECT_EQ(ws.front()->level, WindowLevel::Archive);
    EXPECT_EQ(ws.back()->level, WindowLevel::Fine);
}

TEST(TimeSeriesTest, CoarseWindowEqualsTheSumOfItsFineWindows)
{
    // Two series over the same input: one that rolls up aggressively
    // and one with capacity to keep everything fine. Every coarse
    // window in the first must equal the sum of the fine windows it
    // absorbed in the second.
    TimeSeries rolled(smallParams());
    TimeSeries::Params wide = smallParams();
    wide.fineCapacity = 1024;
    TimeSeries flat(wide);
    MetricRegistry regA, regB;
    for (int i = 0; i < 40; ++i) {
        regA.counter("a").inc(std::uint64_t(i));
        regB.counter("a").inc(std::uint64_t(i));
        const SimTime now = SimTime::fromMs(100 * i + 50);
        rolled.observe(now, regA);
        flat.observe(now, regB);
    }
    rolled.finish();
    flat.finish();
    for (const TsWindow *cw : rolled.windows()) {
        std::uint64_t fineSum = 0;
        for (const TsWindow *fw : flat.windows())
            if (fw->start >= cw->start && fw->end() <= cw->end())
                fineSum += fw->counterDelta("a");
        EXPECT_EQ(cw->counterDelta("a"), fineSum)
            << "window at " << cw->start.millis() << "ms";
    }
}

TEST(TimeSeriesTest, HistogramDeltasWindowLikeCounters)
{
    TimeSeries ts(smallParams());
    MetricRegistry reg;
    reg.histogram("latency.stage", "ns").add(100);
    reg.histogram("latency.stage", "ns").add(200);
    ts.observe(SimTime::fromMs(10), reg);
    reg.histogram("latency.stage", "ns").add(300);
    ts.observe(SimTime::fromMs(150), reg);
    ts.finish();
    const std::vector<const TsWindow *> ws = ts.windows();
    ASSERT_EQ(ws.size(), 2u);
    EXPECT_EQ(ws[0]->histograms.at("latency.stage").count(), 2u);
    EXPECT_EQ(ws[1]->histograms.at("latency.stage").count(), 1u);
}

TEST(TimeSeriesTest, FunnelCountsWindowAsSyntheticCounters)
{
    TimeSeries ts(smallParams());
    MetricRegistry reg;
    DecisionCounts d;
    d.counts[std::size_t(Decision::AcceptedKey)] = 2;
    d.changesIn = 3;
    ts.observe(SimTime::fromMs(10), reg, &d);
    d.counts[std::size_t(Decision::AcceptedKey)] = 5;
    d.changesIn = 7;
    ts.observe(SimTime::fromMs(150), reg, &d);
    ts.finish();
    const std::vector<const TsWindow *> ws = ts.windows();
    ASSERT_EQ(ws.size(), 2u);
    EXPECT_EQ(ws[0]->counterDelta("funnel.accepted-key"), 2u);
    EXPECT_EQ(ws[0]->counterDelta("funnel.changes_in"), 3u);
    EXPECT_EQ(ws[1]->counterDelta("funnel.accepted-key"), 3u);
    EXPECT_EQ(ws[1]->counterDelta("funnel.changes_in"), 4u);
}

TEST(TimeSeriesDeathTest, NonMonotoneTickPanics)
{
    TimeSeries ts(smallParams());
    MetricRegistry reg;
    ts.observe(SimTime::fromMs(500), reg);
    EXPECT_DEATH(ts.observe(SimTime::fromMs(100), reg),
                 "non-monotone");
}

TEST(TimeSeriesDeathTest, ZeroFineWidthPanics)
{
    TimeSeries::Params p;
    p.fineWidth = SimTime();
    EXPECT_DEATH(TimeSeries{p}, "fineWidth");
}

} // namespace
} // namespace gpusc::obs::live
