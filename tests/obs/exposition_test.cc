/**
 * @file
 * Unit tests for the exposition layer: Prometheus text rendering,
 * the JSONL window record (with the spliced alert count), session
 * health views, and metric-name sanitization.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/live/exposition.h"

namespace gpusc::obs::live {
namespace {

TEST(ExpositionTest, PromNameSanitizesDotsAndHyphens)
{
    EXPECT_EQ(Exposition::promName("stream.shed_oldest"),
              "gpusc_stream_shed_oldest");
    EXPECT_EQ(Exposition::promName("funnel.accepted-key"),
              "gpusc_funnel_accepted_key");
    EXPECT_EQ(Exposition::promName("Ab9_z"), "gpusc_Ab9_z");
}

TEST(ExpositionTest, PrometheusTextRendersCountersGaugesAndAlerts)
{
    TimeSeries ts;
    MetricRegistry reg;
    reg.counter("stream.readings_offered").inc(17);
    reg.gauge("stream.memory_headroom").set(0.25);
    ts.observe(SimTime::fromMs(10), reg);

    SloRule r;
    r.name = "shed-rate";
    r.counters = {"stream.shed_oldest"};
    r.threshold = 5.0;
    SloEngine slo({r});

    const std::string text = Exposition::prometheusText(ts, &slo);
    EXPECT_NE(
        text.find(
            "# TYPE gpusc_stream_readings_offered_total counter\n"
            "gpusc_stream_readings_offered_total 17\n"),
        std::string::npos);
    EXPECT_NE(text.find("# TYPE gpusc_stream_memory_headroom gauge\n"
                        "gpusc_stream_memory_headroom 0.25\n"),
              std::string::npos);
    EXPECT_NE(text.find("gpusc_obs_alert_firing{rule=\"shed-rate\"} 0"),
              std::string::npos);
    EXPECT_NE(text.find("gpusc_obs_alerts_active 0\n"),
              std::string::npos);

    // Without an SLO engine the alert families are absent entirely.
    const std::string bare = Exposition::prometheusText(ts, nullptr);
    EXPECT_EQ(bare.find("alert"), std::string::npos);
}

TEST(ExpositionTest, WindowJsonlSplicesTheAlertCount)
{
    TsWindow w;
    w.start = SimTime::fromMs(200);
    w.width = SimTime::fromMs(100);
    w.counters["stream.readings_offered"] = 3;
    const std::string line = Exposition::windowJsonl(w, nullptr, 2);
    EXPECT_EQ(line.back(), '\n');
    EXPECT_NE(line.find("\"t_ms\": 200"), std::string::npos);
    EXPECT_NE(line.find("\"w_ms\": 100"), std::string::npos);
    EXPECT_NE(line.find("\"level\": \"fine\""), std::string::npos);
    EXPECT_NE(line.find("\"stream.readings_offered\": 3"),
              std::string::npos);
    EXPECT_NE(line.find("\"alerts_active\": 2"), std::string::npos);
    // The splice must keep the record a single well-formed object:
    // one trailing '}' before the newline, none dangling after it.
    EXPECT_EQ(line.find('\n'), line.size() - 1);
    EXPECT_EQ(line[line.size() - 2], '}');
}

TEST(ExpositionTest, SessionsJsonListsEveryView)
{
    SessionHealth a;
    a.id = 3;
    a.ringDepth = 2;
    a.ringCapacity = 64;
    a.readingsDrained = 100;
    a.acceptedKeys = 5;
    a.memoryBytes = 4096;
    a.lastTouch = SimTime::fromMs(1234);
    SessionHealth b;
    b.id = 9;
    const std::string json = Exposition::sessionsJson({a, b});
    EXPECT_NE(json.find("\"sessions\": ["), std::string::npos);
    EXPECT_NE(json.find("\"id\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"ring_capacity\": 64"), std::string::npos);
    EXPECT_NE(json.find("\"accepted_keys\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"last_touch_ms\": 1234"), std::string::npos);
    EXPECT_NE(json.find("\"id\": 9"), std::string::npos);

    EXPECT_EQ(Exposition::sessionsJson({}), "{\"sessions\": []}");
}

TEST(ExpositionTest, WindowLevelNamesAreStable)
{
    // The JSONL schema exposes these strings; renames break scrapers.
    EXPECT_STREQ(windowLevelName(WindowLevel::Fine), "fine");
    EXPECT_STREQ(windowLevelName(WindowLevel::Coarse), "coarse");
    EXPECT_STREQ(windowLevelName(WindowLevel::Archive), "archive");
    EXPECT_STREQ(windowLevelName(WindowLevel::Open), "open");
}

} // namespace
} // namespace gpusc::obs::live
