/** @file Unit tests for the log-bucketed latency histogram. */

#include <gtest/gtest.h>

#include <cstdint>

#include "obs/log_histogram.h"

namespace gpusc::obs {
namespace {

TEST(LogHistogramTest, EmptyHistogramReportsZeros)
{
    const LogHistogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
    EXPECT_EQ(h.p99(), 0u);
}

TEST(LogHistogramTest, SingleSampleIsExactAtEveryQuantile)
{
    LogHistogram h;
    h.add(12345);
    EXPECT_FALSE(h.empty());
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 12345u);
    EXPECT_EQ(h.max(), 12345u);
    // Quantiles clamp to the exact extrema, so a single sample is
    // reported exactly regardless of bucket width.
    EXPECT_EQ(h.quantile(0.0), 12345u);
    EXPECT_EQ(h.p50(), 12345u);
    EXPECT_EQ(h.quantile(1.0), 12345u);
}

TEST(LogHistogramTest, SmallValuesLandInUnitBuckets)
{
    // Values below 2^kSubBits get their own unit-wide bucket, so
    // they are recorded exactly.
    for (std::uint64_t v = 0; v < LogHistogram::kSubBuckets; ++v) {
        EXPECT_EQ(LogHistogram::bucketIndex(v), std::size_t(v));
        EXPECT_EQ(LogHistogram::bucketLow(std::size_t(v)), v);
        EXPECT_EQ(LogHistogram::bucketHigh(std::size_t(v)), v + 1);
    }
}

TEST(LogHistogramTest, BucketBoundsContainTheirValues)
{
    // Every value must fall inside [low, high) of its own bucket,
    // across several octaves including large magnitudes.
    for (std::uint64_t v : {0ull, 1ull, 7ull, 8ull, 9ull, 63ull, 64ull,
                            1000ull, 123456ull, 1ull << 20,
                            (1ull << 40) + 17, (1ull << 62) + 5}) {
        const std::size_t i = LogHistogram::bucketIndex(v);
        EXPECT_LE(LogHistogram::bucketLow(i), v) << "v=" << v;
        EXPECT_GT(LogHistogram::bucketHigh(i), v) << "v=" << v;
    }
}

TEST(LogHistogramTest, BucketIndexIsMonotonic)
{
    std::size_t prev = 0;
    for (std::uint64_t v = 0; v < 100000; v += 7) {
        const std::size_t i = LogHistogram::bucketIndex(v);
        EXPECT_GE(i, prev) << "v=" << v;
        prev = i;
    }
}

TEST(LogHistogramTest, QuantilesTrackAUniformDistribution)
{
    LogHistogram h;
    for (std::uint64_t v = 1; v <= 10000; ++v)
        h.add(v);
    EXPECT_EQ(h.count(), 10000u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 10000u);
    EXPECT_NEAR(double(h.mean()), 5000.5, 1.0);
    // Bucket midpoints bound the relative error at ~ one sub-bucket
    // (1/2^kSubBits = 12.5%); allow a little slack on top.
    EXPECT_NEAR(double(h.p50()), 5000.0, 5000.0 * 0.15);
    EXPECT_NEAR(double(h.p90()), 9000.0, 9000.0 * 0.15);
    EXPECT_NEAR(double(h.p99()), 9900.0, 9900.0 * 0.15);
}

TEST(LogHistogramTest, QuantileOrderingIsMonotone)
{
    LogHistogram h;
    for (std::uint64_t v = 1; v <= 5000; v += 3)
        h.add(v * 17 % 9001);
    EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
    EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
    EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
    EXPECT_LE(h.quantile(0.99), h.max());
    EXPECT_GE(h.quantile(0.0), h.min());
}

TEST(LogHistogramTest, AddCountMatchesRepeatedAdd)
{
    LogHistogram a, b;
    a.addCount(640, 100);
    for (int i = 0; i < 100; ++i)
        b.add(640);
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.sum(), b.sum());
    EXPECT_EQ(a.p50(), b.p50());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
}

TEST(LogHistogramTest, MergeIsLossless)
{
    LogHistogram a, b, all;
    for (std::uint64_t v = 1; v <= 1000; ++v) {
        ((v % 2) ? a : b).add(v * 11);
        all.add(v * 11);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_EQ(a.sum(), all.sum());
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
    for (double q : {0.1, 0.5, 0.9, 0.99})
        EXPECT_EQ(a.quantile(q), all.quantile(q)) << "q=" << q;
}

TEST(LogHistogramTest, MergeWithEmptyIsIdentity)
{
    LogHistogram a, empty;
    a.add(42);
    a.add(99);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.min(), 42u);
    EXPECT_EQ(a.max(), 99u);

    LogHistogram c;
    c.merge(a);
    EXPECT_EQ(c.count(), 2u);
    EXPECT_EQ(c.min(), 42u);
    EXPECT_EQ(c.max(), 99u);
}

TEST(LogHistogramTest, DeltaSinceIsTheMergeableComplement)
{
    LogHistogram h;
    h.add(10);
    h.add(1000);
    const LogHistogram before = h;
    h.add(20);
    h.add(2000);

    const LogHistogram delta = h.deltaSince(before);
    EXPECT_EQ(delta.count(), 2u);
    EXPECT_EQ(delta.sum(), 2020.0);

    // Re-merging the delta onto the snapshot reconstructs the full
    // histogram bucket for bucket — the live plane's window identity.
    LogHistogram rebuilt = before;
    rebuilt.merge(delta);
    EXPECT_EQ(rebuilt.count(), h.count());
    EXPECT_EQ(rebuilt.sum(), h.sum());
    for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i)
        EXPECT_EQ(rebuilt.bucketCount(i), h.bucketCount(i))
            << "bucket " << i;

    // No growth: an empty, mergeable-as-no-op delta.
    EXPECT_TRUE(h.deltaSince(h).empty());
}

TEST(LogHistogramTest, RenderListsNonEmptyBuckets)
{
    LogHistogram h;
    EXPECT_TRUE(h.render().empty());
    h.addCount(10, 90);
    h.addCount(1000, 10);
    const std::string out = h.render(20);
    EXPECT_FALSE(out.empty());
    // Both occupied octaves show up with their counts.
    EXPECT_NE(out.find("90"), std::string::npos);
    EXPECT_NE(out.find("10"), std::string::npos);
}

} // namespace
} // namespace gpusc::obs
