/** @file Unit tests for the span ring and Chrome trace export. */

#include <gtest/gtest.h>

#include "obs/span.h"

namespace gpusc::obs {
namespace {

TEST(TracerTest, StageIdsInternNames)
{
    Tracer t;
    const int a = t.stageId("attack.classify");
    const int b = t.stageId("attack.change_detect");
    EXPECT_NE(a, b);
    // Re-interning the same name yields the same lane.
    EXPECT_EQ(t.stageId("attack.classify"), a);
    EXPECT_STREQ(t.stageName(a), "attack.classify");
    EXPECT_STREQ(t.stageName(b), "attack.change_detect");
}

TEST(TracerTest, RecordsSpansInOrder)
{
    Tracer t(16);
    const int tid = t.stageId("s");
    for (int i = 0; i < 5; ++i)
        t.record(tid, SimTime::fromMs(i), 100 * (i + 1));
    EXPECT_EQ(t.size(), 5u);
    EXPECT_EQ(t.recorded(), 5u);
    EXPECT_EQ(t.dropped(), 0u);

    const std::vector<Span> spans = t.snapshot();
    ASSERT_EQ(spans.size(), 5u);
    for (std::size_t i = 0; i < spans.size(); ++i) {
        EXPECT_EQ(spans[i].seq, i);
        EXPECT_EQ(spans[i].at, SimTime::fromMs(std::int64_t(i)));
        EXPECT_EQ(spans[i].hostNs, 100 * std::int64_t(i + 1));
        EXPECT_STREQ(spans[i].name, "s");
    }
}

TEST(TracerTest, RingKeepsTheNewestSpansWhenFull)
{
    Tracer t(4);
    const int tid = t.stageId("s");
    for (int i = 0; i < 10; ++i)
        t.record(tid, SimTime::fromMs(i), i);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.recorded(), 10u);
    EXPECT_EQ(t.dropped(), 6u);

    // The retained window is the last four, oldest first.
    const std::vector<Span> spans = t.snapshot();
    ASSERT_EQ(spans.size(), 4u);
    for (std::size_t i = 0; i < spans.size(); ++i)
        EXPECT_EQ(spans[i].seq, 6 + i);
}

TEST(TracerTest, ChromeTraceJsonNamesLanesAndEvents)
{
    Tracer t;
    const int tid = t.stageId("attack.classify");
    t.record(tid, SimTime::fromMs(5), 2000);

    const std::string json = t.chromeTraceJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // Lane metadata names the stage...
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("attack.classify"), std::string::npos);
    // ...and the span is a complete ("X") event with ts/dur in us:
    // 5 ms -> ts 5000, 2000 ns -> dur 2.
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\": 5000"), std::string::npos);
    EXPECT_NE(json.find("\"dur\": 2"), std::string::npos);
}

TEST(TracerTest, EmptyTracerStillExportsValidSkeleton)
{
    Tracer t;
    const std::string json = t.chromeTraceJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_TRUE(t.snapshot().empty());
}

} // namespace
} // namespace gpusc::obs
