/** @file Unit tests for the decision audit trail. */

#include <gtest/gtest.h>

#include <algorithm>

#include "obs/audit.h"

namespace gpusc::obs {
namespace {

TEST(AuditTrailTest, CountsEveryDecisionClassIndependently)
{
    AuditTrail a;
    a.record(SimTime::fromMs(1), Stage::Inference,
             Decision::NoiseRejected);
    a.record(SimTime::fromMs(2), Stage::Inference,
             Decision::NoiseRejected);
    a.record(SimTime::fromMs(3), Stage::Eavesdropper,
             Decision::AcceptedKey, "a", 1.5);
    a.record(SimTime::fromMs(4), Stage::ChangeDetector,
             Decision::DiscontinuityDropped);

    EXPECT_EQ(a.count(Decision::NoiseRejected), 2u);
    EXPECT_EQ(a.count(Decision::AcceptedKey), 1u);
    EXPECT_EQ(a.count(Decision::DiscontinuityDropped), 1u);
    EXPECT_EQ(a.count(Decision::SplitRepaired), 0u);
    EXPECT_EQ(a.recorded(), 4u);
    EXPECT_EQ(a.dropped(), 0u);
}

TEST(AuditTrailTest, ChangesAuditedSumsOnlyTheChangeFunnel)
{
    AuditTrail a;
    a.record(SimTime::fromMs(1), Stage::Eavesdropper,
             Decision::AcceptedKey);
    a.record(SimTime::fromMs(2), Stage::Eavesdropper,
             Decision::SplitRepaired);
    a.record(SimTime::fromMs(3), Stage::Inference,
             Decision::DuplicationDrop);
    a.record(SimTime::fromMs(4), Stage::Inference,
             Decision::NoiseRejected);
    a.record(SimTime::fromMs(5), Stage::Eavesdropper,
             Decision::SuppressedAppSwitch);
    // Reading-level and sampler lifecycle events stay out of the
    // change funnel.
    a.record(SimTime::fromMs(6), Stage::ChangeDetector,
             Decision::DiscontinuityDropped);
    a.record(SimTime::fromMs(7), Stage::Sampler,
             Decision::SamplerSuspended);
    a.record(SimTime::fromMs(8), Stage::Sampler,
             Decision::SamplerRecovered);

    EXPECT_EQ(a.changesAudited(), 5u);
    EXPECT_EQ(a.recorded(), 8u);
}

TEST(AuditTrailTest, RingEvictsOldestButCountsAreUnbounded)
{
    AuditTrail a(4);
    for (int i = 0; i < 10; ++i)
        a.record(SimTime::fromMs(i), Stage::Inference,
                 Decision::NoiseRejected);
    EXPECT_EQ(a.count(Decision::NoiseRejected), 10u);
    EXPECT_EQ(a.recorded(), 10u);
    EXPECT_EQ(a.dropped(), 6u);

    const std::vector<AuditRecord> recs = a.snapshot();
    ASSERT_EQ(recs.size(), 4u);
    for (std::size_t i = 0; i < recs.size(); ++i) {
        EXPECT_EQ(recs[i].seq, 6 + i);
        EXPECT_EQ(recs[i].time, SimTime::fromMs(std::int64_t(6 + i)));
    }
}

TEST(AuditTrailTest, JsonlCarriesOptionalFieldsOnlyWhenSet)
{
    AuditTrail a;
    a.record(SimTime::fromMs(12), Stage::Eavesdropper,
             Decision::AcceptedKey, "q", 0.75);
    a.record(SimTime::fromMs(13), Stage::Inference,
             Decision::NoiseRejected);

    const std::string jsonl = a.toJsonl();
    // One line per record.
    EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
    const std::size_t cut = jsonl.find('\n');
    const std::string first = jsonl.substr(0, cut);
    const std::string second = jsonl.substr(cut + 1);
    EXPECT_NE(first.find("\"seq\": 0"), std::string::npos);
    EXPECT_NE(first.find("\"t_ms\": 12.000"), std::string::npos);
    EXPECT_NE(first.find("\"stage\": \"eavesdropper\""),
              std::string::npos);
    EXPECT_NE(first.find("\"decision\": \"accepted-key\""),
              std::string::npos);
    EXPECT_NE(first.find("\"label\": \"q\""), std::string::npos);
    EXPECT_NE(first.find("\"distance\": 0.75"), std::string::npos);
    // The label-free rejection omits both optional fields.
    EXPECT_EQ(second.find("\"label\""), std::string::npos);
    EXPECT_EQ(second.find("\"distance\""), std::string::npos);
    EXPECT_NE(second.find("\"decision\": \"noise-rejected\""),
              std::string::npos);
}

TEST(AuditTrailTest, FunnelJsonPartitionsChangesIn)
{
    AuditTrail a;
    for (int i = 0; i < 3; ++i)
        a.record(SimTime::fromMs(i), Stage::Eavesdropper,
                 Decision::AcceptedKey);
    a.record(SimTime::fromMs(10), Stage::Inference,
             Decision::DuplicationDrop);
    a.record(SimTime::fromMs(11), Stage::Inference,
             Decision::NoiseRejected);

    const std::string json = a.funnelJson();
    EXPECT_NE(json.find("\"changes_in\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"accepted\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"split_repaired\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"duplication_dropped\": 1"),
              std::string::npos);
    EXPECT_NE(json.find("\"noise_rejected\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"suppressed_app_switch\": 0"),
              std::string::npos);
    EXPECT_NE(json.find("\"discontinuity_dropped\": 0"),
              std::string::npos);
    EXPECT_NE(json.find("\"sampler_suspensions\": 0"),
              std::string::npos);
    EXPECT_NE(json.find("\"sampler_recoveries\": 0"),
              std::string::npos);
}

TEST(AuditTrailTest, StageAndDecisionNamesAreStable)
{
    EXPECT_STREQ(stageName(Stage::Sampler), "sampler");
    EXPECT_STREQ(stageName(Stage::ChangeDetector), "change-detector");
    EXPECT_STREQ(stageName(Stage::Inference), "inference");
    EXPECT_STREQ(stageName(Stage::Eavesdropper), "eavesdropper");
    EXPECT_STREQ(decisionName(Decision::AcceptedKey), "accepted-key");
    EXPECT_STREQ(decisionName(Decision::SamplerRecovered),
                 "sampler-recovered");
}

} // namespace
} // namespace gpusc::obs
