/**
 * @file
 * Unit tests for the SLO watchdog engine: hysteresis fire/resolve,
 * audit + gauge side effects, every rule kind's observed value, and
 * the rules-file parser (including its typed errors).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/live/slo.h"
#include "obs/telemetry.h"

namespace gpusc::obs::live {
namespace {

TsWindow
window(double startMs, std::uint64_t shedDelta)
{
    TsWindow w;
    w.start = SimTime::fromMs(std::int64_t(startMs));
    w.width = SimTime::fromSeconds(1.0);
    if (shedDelta > 0)
        w.counters["stream.shed_oldest"] = shedDelta;
    return w;
}

SloRule
shedRule()
{
    SloRule r;
    r.name = "shed-rate";
    r.kind = SloRule::Kind::CounterRate;
    r.cmp = SloRule::Cmp::Gt;
    r.counters = {"stream.shed_oldest"};
    r.threshold = 5.0;
    r.fireAfter = 2;
    r.resolveAfter = 2;
    return r;
}

TEST(SloEngineTest, HysteresisFiresAndResolvesWithAuditAndGauge)
{
    Telemetry tel;
    SloEngine slo({shedRule()});

    // One breaching window is below fireAfter=2: still healthy.
    slo.evaluate(window(0, 10), &tel);
    EXPECT_EQ(slo.activeAlerts(), 0u);
    EXPECT_EQ(tel.audit.count(Decision::AlertFired), 0u);

    // Second consecutive breach fires: audit record + gauge flip.
    slo.evaluate(window(1000, 10), &tel);
    EXPECT_EQ(slo.activeAlerts(), 1u);
    EXPECT_TRUE(slo.alerts()[0].firing);
    EXPECT_EQ(slo.alerts()[0].timesFired, 1u);
    EXPECT_EQ(tel.audit.count(Decision::AlertFired), 1u);
    EXPECT_DOUBLE_EQ(tel.metrics.gauge("obs.alerts_active").value(),
                     1.0);

    // One healthy window is below resolveAfter=2: still firing.
    slo.evaluate(window(2000, 0), &tel);
    EXPECT_EQ(slo.activeAlerts(), 1u);
    EXPECT_EQ(tel.audit.count(Decision::AlertResolved), 0u);

    // Second consecutive healthy window resolves.
    slo.evaluate(window(3000, 0), &tel);
    EXPECT_EQ(slo.activeAlerts(), 0u);
    EXPECT_EQ(slo.alerts()[0].timesResolved, 1u);
    EXPECT_EQ(tel.audit.count(Decision::AlertResolved), 1u);
    EXPECT_DOUBLE_EQ(tel.metrics.gauge("obs.alerts_active").value(),
                     0.0);

    // The transitions recorded under Stage::LiveObs carry the rule
    // name and never enter the change funnel.
    const std::vector<AuditRecord> records = tel.audit.snapshot();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].stage, Stage::LiveObs);
    EXPECT_EQ(records[0].label, "shed-rate");
    EXPECT_EQ(tel.audit.changesAudited(), 0u);
}

TEST(SloEngineTest, BreachStreakResetsOnAHealthyWindow)
{
    SloEngine slo({shedRule()});
    slo.evaluate(window(0, 10), nullptr);
    slo.evaluate(window(1000, 0), nullptr); // streak broken
    slo.evaluate(window(2000, 10), nullptr);
    // Two non-consecutive breaches never fire a fireAfter=2 rule.
    EXPECT_EQ(slo.activeAlerts(), 0u);
}

TEST(SloEngineTest, CounterRateDividesByWindowSeconds)
{
    TsWindow w = window(0, 12);
    w.width = SimTime::fromSeconds(2.0);
    AlertState state;
    state.rule = shedRule();
    EXPECT_DOUBLE_EQ(
        SloEngine::observedValue(state.rule, w, state), 6.0);
}

TEST(SloEngineTest, GaugeLevelReadsTheWindowLevel)
{
    SloRule r;
    r.name = "headroom";
    r.kind = SloRule::Kind::GaugeLevel;
    r.cmp = SloRule::Cmp::Lt;
    r.gauge = "stream.memory_headroom";
    r.threshold = 0.1;
    TsWindow w = window(0, 0);
    w.gauges["stream.memory_headroom"] = 0.05;
    AlertState state;
    state.rule = r;
    EXPECT_DOUBLE_EQ(SloEngine::observedValue(r, w, state), 0.05);

    SloEngine slo({r}); // default fireAfter=1: fires immediately
    slo.evaluate(w, nullptr);
    EXPECT_EQ(slo.activeAlerts(), 1u);
}

TEST(SloEngineTest, FunnelResidualIsZeroWhenTheFunnelPartitions)
{
    SloRule r;
    r.name = "funnel";
    r.kind = SloRule::Kind::FunnelResidual;
    r.cmp = SloRule::Cmp::Ne;
    r.threshold = 0.0;
    TsWindow w = window(0, 0);
    w.counters["funnel.changes_in"] = 9;
    w.counters["funnel.accepted-key"] = 4;
    w.counters["funnel.noise-rejected"] = 3;
    w.counters["funnel.duplication-drop"] = 2;
    AlertState state;
    state.rule = r;
    EXPECT_DOUBLE_EQ(SloEngine::observedValue(r, w, state), 0.0);

    // A change that lost its outcome shows as a non-zero residual.
    w.counters["funnel.changes_in"] = 10;
    EXPECT_DOUBLE_EQ(SloEngine::observedValue(r, w, state), 1.0);
    SloEngine slo({r});
    slo.evaluate(w, nullptr);
    EXPECT_EQ(slo.activeAlerts(), 1u);
}

TEST(SloEngineTest, RatioDropEwmaSmoothsAndHoldsOnEmptyDenominator)
{
    SloRule r;
    r.name = "accept-rate";
    r.kind = SloRule::Kind::RatioDrop;
    r.cmp = SloRule::Cmp::Lt;
    r.counters = {"funnel.accepted-key"};
    r.denomCounters = {"funnel.changes_in"};
    r.threshold = 0.5;
    r.ewmaAlpha = 0.5;
    r.fireAfter = 1;
    SloEngine slo({r});

    // Seed at ratio 1.0 (healthy for a Lt 0.5 rule).
    TsWindow w1 = window(0, 0);
    w1.counters["funnel.changes_in"] = 4;
    w1.counters["funnel.accepted-key"] = 4;
    slo.evaluate(w1, nullptr);
    EXPECT_DOUBLE_EQ(slo.alerts()[0].lastValue, 1.0);
    EXPECT_EQ(slo.activeAlerts(), 0u);

    // A 0.0 window moves the EWMA to 0.5, not to 0: smoothing damps
    // the single-window spike (0.5 does not breach a Lt rule).
    TsWindow w2 = window(1000, 0);
    w2.counters["funnel.changes_in"] = 4;
    slo.evaluate(w2, nullptr);
    EXPECT_DOUBLE_EQ(slo.alerts()[0].lastValue, 0.5);
    EXPECT_EQ(slo.activeAlerts(), 0u);

    // An empty-denominator window holds the accumulator unchanged.
    slo.evaluate(window(2000, 0), nullptr);
    EXPECT_DOUBLE_EQ(slo.alerts()[0].lastValue, 0.5);

    // Another bad window drops the EWMA to 0.25: the alert fires.
    TsWindow w3 = window(3000, 0);
    w3.counters["funnel.changes_in"] = 4;
    slo.evaluate(w3, nullptr);
    EXPECT_DOUBLE_EQ(slo.alerts()[0].lastValue, 0.25);
    EXPECT_EQ(slo.activeAlerts(), 1u);
}

TEST(SloEngineTest, RatioDropNeverFiresBeforeTheFirstSample)
{
    SloRule r;
    r.name = "accept-rate";
    r.kind = SloRule::Kind::RatioDrop;
    r.cmp = SloRule::Cmp::Lt;
    r.counters = {"funnel.accepted-key"};
    r.denomCounters = {"funnel.changes_in"};
    r.threshold = 0.5;
    r.fireAfter = 1;
    SloEngine slo({r});
    // Empty windows before any denominator sample: 0.0 < 0.5 would
    // breach, but an unseeded EWMA must not count as an observation.
    slo.evaluate(window(0, 0), nullptr);
    slo.evaluate(window(1000, 0), nullptr);
    EXPECT_EQ(slo.activeAlerts(), 0u);
}

TEST(SloEngineTest, ToJsonListsEveryRuleWithItsState)
{
    Telemetry tel;
    SloRule r = shedRule();
    r.fireAfter = 1;
    SloEngine slo({r});
    slo.evaluate(window(0, 10), &tel);
    const std::string json = slo.toJson();
    EXPECT_NE(json.find("\"active\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"shed-rate\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"counter_rate\""),
              std::string::npos);
    EXPECT_NE(json.find("\"firing\": true"), std::string::npos);
}

TEST(SloParseTest, ParsesRulesCommentsAndBlankLines)
{
    SloParseError err;
    const std::vector<SloRule> rules = SloEngine::parseRules(
        "# watchdogs for the streaming service\n"
        "\n"
        "name=shed kind=counter_rate cmp=gt "
        "counters=stream.shed_oldest,stream.shed_newest threshold=100 "
        "fire_after=3 resolve_after=5\n"
        "name=headroom kind=gauge_level cmp=lt "
        "gauge=stream.memory_headroom threshold=0.1\n"
        "name=acc kind=ratio_drop cmp=lt counters=funnel.accepted-key "
        "denom=funnel.changes_in threshold=0.2 ewma_alpha=0.4\n",
        &err);
    ASSERT_EQ(rules.size(), 3u);
    EXPECT_TRUE(err.message.empty());
    EXPECT_EQ(rules[0].name, "shed");
    EXPECT_EQ(rules[0].kind, SloRule::Kind::CounterRate);
    ASSERT_EQ(rules[0].counters.size(), 2u);
    EXPECT_EQ(rules[0].counters[1], "stream.shed_newest");
    EXPECT_DOUBLE_EQ(rules[0].threshold, 100.0);
    EXPECT_EQ(rules[0].fireAfter, 3u);
    EXPECT_EQ(rules[0].resolveAfter, 5u);
    EXPECT_EQ(rules[1].kind, SloRule::Kind::GaugeLevel);
    EXPECT_EQ(rules[1].gauge, "stream.memory_headroom");
    EXPECT_EQ(rules[2].kind, SloRule::Kind::RatioDrop);
    ASSERT_EQ(rules[2].denomCounters.size(), 1u);
    EXPECT_DOUBLE_EQ(rules[2].ewmaAlpha, 0.4);
}

TEST(SloParseTest, ReportsUnknownKindWithItsLine)
{
    SloParseError err;
    const std::vector<SloRule> rules = SloEngine::parseRules(
        "name=ok kind=counter_rate threshold=1\n"
        "name=bad kind=warp_drive threshold=1\n",
        &err);
    EXPECT_EQ(rules.size(), 1u);
    EXPECT_EQ(err.line, 2u);
    EXPECT_NE(err.message.find("unknown kind"), std::string::npos);
}

TEST(SloParseTest, ReportsMissingNameAndMalformedFields)
{
    SloParseError err;
    EXPECT_TRUE(
        SloEngine::parseRules("kind=counter_rate threshold=1\n", &err)
            .empty());
    EXPECT_NE(err.message.find("missing name"), std::string::npos);

    SloParseError err2;
    EXPECT_TRUE(SloEngine::parseRules("justaword\n", &err2).empty());
    EXPECT_EQ(err2.line, 1u);
    EXPECT_NE(err2.message.find("key=value"), std::string::npos);

    SloParseError err3;
    EXPECT_TRUE(
        SloEngine::parseRules("name=x froob=1\n", &err3).empty());
    EXPECT_NE(err3.message.find("unknown field"), std::string::npos);
}

} // namespace
} // namespace gpusc::obs::live
