// gpusc_lint engine tests: each fixture under fixtures/ carries one
// known violation class; the tests pin exact rule IDs, file:line
// anchors, the suppression contract and the JSON export schema.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "findings.h"
#include "rules.h"
#include "scan.h"

namespace {

using namespace gpusc::lint;

std::string
fixturePath(const std::string &name)
{
    return std::string(LINT_FIXTURE_DIR) + "/" + name;
}

/** Load one fixture, presenting it to the engine as @p relPath. */
SourceFile
fixture(const std::string &name, const std::string &relPath)
{
    SourceFile sf;
    const bool ok = loadSource(fixturePath(name), relPath, sf);
    EXPECT_TRUE(ok) << "cannot read fixture " << name;
    return sf;
}

std::vector<Finding>
lintOne(const std::string &name, const std::string &relPath)
{
    std::vector<SourceFile> files;
    files.push_back(fixture(name, relPath));
    return runRules(files);
}

std::vector<Finding>
byRule(const std::vector<Finding> &fs, const std::string &rule)
{
    std::vector<Finding> out;
    std::copy_if(fs.begin(), fs.end(), std::back_inserter(out),
                 [&](const Finding &f) { return f.rule == rule; });
    return out;
}

TEST(LintRules, D1FlagsEveryWallClockSource)
{
    const auto fs =
        lintOne("d1_wall_clock.cc", "src/attack/d1_wall_clock.cc");
    const auto d1 = byRule(fs, "D1");
    ASSERT_EQ(d1.size(), 4u);
    EXPECT_EQ(d1[0].line, 10); // steady_clock
    EXPECT_EQ(d1[1].line, 11); // system_clock
    EXPECT_EQ(d1[2].line, 12); // time(nullptr)
    EXPECT_EQ(d1[3].line, 13); // clock()
    for (const Finding &f : d1)
        EXPECT_EQ(f.file, "src/attack/d1_wall_clock.cc");
    EXPECT_EQ(fs.size(), d1.size()) << "unexpected extra findings";
}

TEST(LintRules, D1RespectsTheAllowlist)
{
    // Same content, but presented as the allowlisted TU / a bench.
    EXPECT_TRUE(
        lintOne("d1_wall_clock.cc", "src/obs/span.cc").empty());
    EXPECT_TRUE(
        lintOne("d1_wall_clock.cc", "bench/d1_wall_clock.cc")
            .empty());
}

TEST(LintRules, D2FlagsNondeterministicRandomness)
{
    const auto fs =
        lintOne("d2_randomness.cc", "src/workload/d2_randomness.cc");
    const auto d2 = byRule(fs, "D2");
    ASSERT_EQ(d2.size(), 3u);
    EXPECT_EQ(d2[0].line, 10); // random_device
    EXPECT_EQ(d2[1].line, 11); // mt19937
    EXPECT_EQ(d2[2].line, 12); // rand()
    EXPECT_EQ(fs.size(), d2.size());
}

TEST(LintRules, D2AllowsUtilRng)
{
    EXPECT_TRUE(
        lintOne("d2_randomness.cc", "src/util/rng.cc").empty());
}

TEST(LintRules, D3FlagsUnorderedIterationInSerializingTus)
{
    const auto fs = lintOne("d3_unordered_export.cc",
                            "src/trace/d3_unordered_export.cc");
    const auto d3 = byRule(fs, "D3");
    ASSERT_EQ(d3.size(), 1u);
    EXPECT_EQ(d3[0].line, 14);
    EXPECT_NE(d3[0].message.find("exportCounts_"),
              std::string::npos);
}

TEST(LintRules, D3IgnoresNonSerializingTus)
{
    // The same iteration is fine where output order is internal.
    EXPECT_TRUE(lintOne("d3_unordered_export.cc",
                        "src/gpu/d3_unordered_export.cc")
                    .empty());
}

TEST(LintRules, F1FlagsFloatEqualityBothDirections)
{
    const auto fs =
        lintOne("f1_float_eq.cc", "src/eval/f1_float_eq.cc");
    const auto f1 = byRule(fs, "F1");
    ASSERT_EQ(f1.size(), 2u);
    EXPECT_EQ(f1[0].line, 7); // == 0.5
    EXPECT_EQ(f1[1].line, 9); // != -1.0f
}

TEST(LintRules, H1FlagsGuardDrift)
{
    const auto fs =
        lintOne("h1_bad_guard.h", "src/util/h1_bad_guard.h");
    const auto h1 = byRule(fs, "H1");
    ASSERT_EQ(h1.size(), 1u);
    EXPECT_EQ(h1[0].line, 2);
    EXPECT_NE(h1[0].message.find("GPUSC_UTIL_H1_BAD_GUARD_H"),
              std::string::npos);
}

TEST(LintRules, ExpectedGuardStripsSrcPrefix)
{
    EXPECT_EQ(expectedGuard("src/obs/span.h"), "GPUSC_OBS_SPAN_H");
    EXPECT_EQ(expectedGuard("bench/bench_util.h"),
              "GPUSC_BENCH_BENCH_UTIL_H");
    EXPECT_EQ(expectedGuard("tools/lint/lexer.h"),
              "GPUSC_TOOLS_LINT_LEXER_H");
}

TEST(LintRules, S1FlagsUninitializedWireMember)
{
    const auto fs = lintOne("s1_uninit.h", "src/trace/s1_uninit.h");
    const auto s1 = byRule(fs, "S1");
    ASSERT_EQ(s1.size(), 1u);
    EXPECT_EQ(s1[0].line, 14);
    EXPECT_NE(s1[0].message.find("payload"), std::string::npos);
    EXPECT_NE(s1[0].message.find("WireRecord"), std::string::npos);
    // Initialized members and the method must not be flagged.
    EXPECT_EQ(fs.size(), s1.size());
}

TEST(LintRules, S1OnlyAppliesToTraceHeaders)
{
    // Outside src/trace/ the member rule is silent (the guard rule
    // still fires, since the fixture's guard names src/trace/).
    const auto fs = lintOne("s1_uninit.h", "src/obs/s1_uninit.h");
    EXPECT_TRUE(byRule(fs, "S1").empty());
    EXPECT_EQ(fs.size(), byRule(fs, "H1").size());
}

TEST(LintRules, CleanFixtureProducesNoFindings)
{
    EXPECT_TRUE(
        lintOne("clean.cc", "src/trace/clean.cc").empty());
}

TEST(LintSuppressions, JustifiedAllowSilencesTheFinding)
{
    EXPECT_TRUE(
        lintOne("suppressed_ok.cc", "src/attack/suppressed_ok.cc")
            .empty());
}

TEST(LintSuppressions, BareAllowIsItselfAFinding)
{
    const auto fs = lintOne("suppressed_nojust.cc",
                            "src/attack/suppressed_nojust.cc");
    const auto d1 = byRule(fs, "D1");
    const auto x1 = byRule(fs, "X1");
    ASSERT_EQ(d1.size(), 1u) << "bare allow must not suppress";
    EXPECT_EQ(d1[0].line, 11);
    ASSERT_EQ(x1.size(), 1u);
    EXPECT_EQ(x1[0].line, 10);
    EXPECT_NE(x1[0].message.find("justification"),
              std::string::npos);
}

TEST(LintSuppressions, UnusedAllowIsItselfAFinding)
{
    const auto fs = lintOne("suppressed_unused.cc",
                            "src/attack/suppressed_unused.cc");
    const auto x2 = byRule(fs, "X2");
    ASSERT_EQ(x2.size(), 1u);
    EXPECT_EQ(x2[0].line, 8);
    EXPECT_EQ(fs.size(), 1u);
}

TEST(LintJson, SchemaHasFindingsCountsAndTotal)
{
    const auto fs =
        lintOne("f1_float_eq.cc", "src/eval/f1_float_eq.cc");
    const std::string json = renderJson(fs, {});
    EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"findings\": ["), std::string::npos);
    EXPECT_NE(json.find("\"baselined\": []"), std::string::npos);
    EXPECT_NE(json.find("\"rule\": \"F1\""), std::string::npos);
    EXPECT_NE(json.find("\"file\": \"src/eval/f1_float_eq.cc\""),
              std::string::npos);
    EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"counts\": {\"F1\": 2}"),
              std::string::npos);
    EXPECT_NE(json.find("\"total\": 2"), std::string::npos);
}

TEST(LintJson, TableListsEveryFinding)
{
    const auto fs =
        lintOne("d1_wall_clock.cc", "src/attack/d1_wall_clock.cc");
    const std::string table = renderTable(fs);
    EXPECT_NE(table.find("src/attack/d1_wall_clock.cc:10"),
              std::string::npos);
    EXPECT_NE(table.find("4 findings"), std::string::npos);
}

TEST(LintBaseline, BaselineDemotesMatchingFindings)
{
    auto fs = lintOne("f1_float_eq.cc", "src/eval/f1_float_eq.cc");
    std::vector<BaselineEntry> baseline = {
        {"F1", "src/eval/f1_float_eq.cc"}};
    std::vector<Finding> demoted;
    applyBaseline(baseline, fs, demoted);
    EXPECT_TRUE(fs.empty());
    EXPECT_EQ(demoted.size(), 2u);
}

TEST(LintBaseline, EmptyCheckedInBaselineParses)
{
    // The real checked-in baseline must exist, parse, and be empty.
    std::vector<BaselineEntry> entries;
    ASSERT_TRUE(loadBaseline(std::string(LINT_BASELINE_FILE),
                             entries, /*missingOk=*/false));
    EXPECT_TRUE(entries.empty())
        << "tools/lint/baseline.json must be empty at merge";
}

} // namespace
