// Fixture: a D1 violation silenced by a justified suppression —
// the engine must report nothing.
#include <chrono>

namespace fixture {

long
now()
{
    // gpusc-lint: allow(D1): fixture exercising the justified-suppression path.
    auto t = std::chrono::steady_clock::now();
    (void)t;
    return 0;
}

} // namespace fixture
