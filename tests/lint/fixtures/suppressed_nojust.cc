// Fixture: a bare allow() with no justification. The violation
// stays reported and the suppression itself is an X1 finding.
#include <chrono>

namespace fixture {

long
now()
{
    // gpusc-lint: allow(D1)
    auto t = std::chrono::steady_clock::now(); // line 11: D1 + X1
    (void)t;
    return 0;
}

} // namespace fixture
