// Fixture: wire-format struct member without an explicit
// initializer (engine sees this file as src/trace/s1_uninit.h).
#ifndef GPUSC_TRACE_S1_UNINIT_H
#define GPUSC_TRACE_S1_UNINIT_H

#include <cstdint>
#include <string>

namespace fixture {

struct WireRecord
{
    std::uint32_t magic = 0x47504354;
    std::string payload; // line 14: S1
    std::uint16_t version = 1;

    bool ok() const { return version != 0; }
};

} // namespace fixture

#endif // GPUSC_TRACE_S1_UNINIT_H
