// Fixture: every banned randomness source D2 must catch.
#include <cstdlib>
#include <random>

namespace fixture {

int
roll()
{
    std::random_device rd;     // line 10: D2
    std::mt19937 gen(rd());    // line 11: D2
    return int(gen()) + rand(); // line 12: D2
}

} // namespace fixture
