// Fixture: violation-free source; the engine must stay silent.
#include <map>
#include <string>

namespace fixture {

std::map<std::string, int> orderedCounts_;

std::string
toJson()
{
    std::string out;
    for (const auto &[k, v] : orderedCounts_) {
        out += k;
        out += char('0' + v % 10);
    }
    return out;
}

bool
nearly(double a, double b)
{
    const double d = a - b;
    return d < 1e-9 && d > -1e-9;
}

} // namespace fixture
