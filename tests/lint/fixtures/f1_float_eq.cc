// Fixture: floating-point equality against literals.
namespace fixture {

bool
check(double x, float y)
{
    if (x == 0.5)  // line 7: F1
        return true;
    return y != -1.0f; // line 9: F1
}

} // namespace fixture
