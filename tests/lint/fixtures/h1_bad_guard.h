// Fixture: include guard that does not follow GPUSC_<PATH>_H.
#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

namespace fixture {
inline int one() { return 1; }
} // namespace fixture

#endif // WRONG_GUARD_H
