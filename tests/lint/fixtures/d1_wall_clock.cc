// Fixture: every banned wall-clock source D1 must catch.
#include <chrono>
#include <ctime>

namespace fixture {

long
now()
{
    auto a = std::chrono::steady_clock::now();   // line 10: D1
    auto b = std::chrono::system_clock::now();   // line 11: D1
    std::time_t c = time(nullptr);               // line 12: D1
    long d = clock();                            // line 13: D1
    (void)a;
    (void)b;
    return long(c) + d;
}

} // namespace fixture
