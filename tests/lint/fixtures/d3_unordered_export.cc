// Fixture: range-for over an unordered container in a TU that is
// presented to the engine as a serializing one (src/trace/...).
#include <string>
#include <unordered_map>

namespace fixture {

std::unordered_map<std::string, int> exportCounts_;

std::string
toJson()
{
    std::string out;
    for (const auto &[k, v] : exportCounts_) { // line 14: D3
        out += k;
        (void)v;
    }
    return out;
}

} // namespace fixture
