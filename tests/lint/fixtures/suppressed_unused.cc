// Fixture: a justified suppression that matches no finding — the
// stale allow must surface as X2.
namespace fixture {

int
nothing()
{
    // gpusc-lint: allow(D1): there is no violation here any more.
    return 0;
}

} // namespace fixture
