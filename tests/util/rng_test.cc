/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/rng.h"

namespace gpusc {
namespace {

TEST(RngTest, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(RngTest, UniformIntInclusiveAndCoversRange)
{
    Rng rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntSingleton)
{
    Rng rng(3);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(9, 9), 9);
}

TEST(RngDeathTest, UniformIntEmptyRangePanics)
{
    Rng rng(3);
    EXPECT_DEATH((void)rng.uniformInt(5, 4), "empty range");
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, BernoulliDegenerate)
{
    Rng rng(13);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(RngTest, NormalMoments)
{
    Rng rng(17);
    double sum = 0.0, sumSq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(5.0, 2.0);
        sum += x;
        sumSq += x * x;
    }
    const double mean = sum / n;
    const double var = sumSq / n - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ExponentialMean)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.exponential(3.0);
        EXPECT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(RngTest, LogNormalMatchesMoments)
{
    Rng rng(23);
    double sum = 0.0, sumSq = 0.0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.logNormalByMoments(100.0, 25.0);
        EXPECT_GT(x, 0.0);
        sum += x;
        sumSq += x * x;
    }
    const double mean = sum / n;
    const double sd = std::sqrt(sumSq / n - mean * mean);
    EXPECT_NEAR(mean, 100.0, 1.5);
    EXPECT_NEAR(sd, 25.0, 2.0);
}

TEST(RngTest, WeightedIndexRespectsWeights)
{
    Rng rng(29);
    const double weights[] = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.weightedIndex(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(double(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, ShuffleIsPermutation)
{
    Rng rng(31);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(RngTest, PickReturnsElement)
{
    Rng rng(37);
    const std::vector<int> v{10, 20, 30};
    for (int i = 0; i < 50; ++i) {
        const int p = rng.pick(v);
        EXPECT_TRUE(p == 10 || p == 20 || p == 30);
    }
}

TEST(RngTest, ForkIsIndependent)
{
    Rng a(41);
    Rng child = a.fork();
    // The child must not replay the parent's stream.
    Rng b(41);
    (void)b.next(); // parent consumed one draw creating the child
    int same = 0;
    for (int i = 0; i < 50; ++i)
        same += child.next() == b.next();
    EXPECT_LT(same, 3);
}

/** Property sweep: statistics hold across seeds. */
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngSeedSweep, UniformMeanIsHalf)
{
    Rng rng(GetParam());
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST_P(RngSeedSweep, UniformIntIsUnbiased)
{
    Rng rng(GetParam());
    long long sum = 0;
    for (int i = 0; i < 10000; ++i)
        sum += rng.uniformInt(0, 9);
    EXPECT_NEAR(sum / 10000.0, 4.5, 0.15);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 42, 1234567,
                                           0xdeadbeef));

} // namespace
} // namespace gpusc
