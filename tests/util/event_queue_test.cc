/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <vector>

#include "util/event_queue.h"

namespace gpusc {
namespace {

using namespace gpusc::sim_literals;

TEST(EventQueueTest, StartsEmptyAtTimeZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now().ns(), 0);
    EXPECT_EQ(eq.nextTime(), SimTime::max());
}

TEST(EventQueueTest, DispatchesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30_ms, [&] { order.push_back(3); });
    eq.schedule(10_ms, [&] { order.push_back(1); });
    eq.schedule(20_ms, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30_ms);
}

TEST(EventQueueTest, FifoTieBreaking)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(10_ms, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime)
{
    EventQueue eq;
    SimTime fired;
    eq.schedule(10_ms, [&] {
        eq.scheduleAfter(5_ms, [&] { fired = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(fired, 15_ms);
}

TEST(EventQueueTest, CancelPreventsDispatch)
{
    EventQueue eq;
    bool fired = false;
    const EventId id = eq.schedule(10_ms, [&] { fired = true; });
    eq.cancel(id);
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(eq.dispatched(), 0u);
}

TEST(EventQueueTest, CancelFiredEventIsNoop)
{
    EventQueue eq;
    const EventId id = eq.schedule(1_ms, [] {});
    eq.run();
    eq.cancel(id); // must not crash or corrupt
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueTest, RunUntilHorizonLeavesLaterEvents)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10_ms, [&] { ++count; });
    eq.schedule(20_ms, [&] { ++count; });
    eq.runUntil(15_ms);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.now(), 15_ms); // time advances to the horizon
    eq.run();
    EXPECT_EQ(count, 2);
}

TEST(EventQueueTest, EventAtHorizonRuns)
{
    EventQueue eq;
    bool fired = false;
    eq.schedule(10_ms, [&] { fired = true; });
    eq.runUntil(10_ms);
    EXPECT_TRUE(fired);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            eq.scheduleAfter(1_ms, chain);
    };
    eq.scheduleAfter(1_ms, chain);
    eq.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(eq.now(), 10_ms);
}

TEST(EventQueueTest, NextTimeSkipsCancelled)
{
    EventQueue eq;
    const EventId early = eq.schedule(5_ms, [] {});
    eq.schedule(10_ms, [] {});
    eq.cancel(early);
    EXPECT_EQ(eq.nextTime(), 10_ms);
}

TEST(EventQueueTest, DispatchedCounts)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(SimTime::fromMs(i + 1), [] {});
    eq.run();
    EXPECT_EQ(eq.dispatched(), 7u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10_ms, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5_ms, [] {}), "before now");
}

} // namespace
} // namespace gpusc
