/** @file Tests for structured log capture and sim-time prefixes. */

#include <gtest/gtest.h>

#include <vector>

#include "util/logging.h"

namespace gpusc {
namespace {

/** Captures log records and restores global logging state on exit. */
class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        wasVerbose_ = verbose();
        setVerbose(true);
        setLogSink([this](const LogRecord &r) { records_.push_back(r); });
    }

    void TearDown() override
    {
        setLogSink(nullptr);
        setVerbose(wasVerbose_);
    }

    std::vector<LogRecord> records_;
    bool wasVerbose_ = true;
};

TEST_F(LoggingTest, SinkCapturesFormattedRecords)
{
    inform("hello %d", 42);
    warn("watch out: %s", "cliff");
    ASSERT_EQ(records_.size(), 2u);
    EXPECT_EQ(records_[0].level, LogRecord::Level::Info);
    EXPECT_EQ(records_[0].message, "hello 42");
    EXPECT_EQ(records_[1].level, LogRecord::Level::Warn);
    EXPECT_EQ(records_[1].message, "watch out: cliff");
}

TEST_F(LoggingTest, UntimedMessagesCarryNoSimTime)
{
    inform("no clock registered");
    ASSERT_EQ(records_.size(), 1u);
    EXPECT_FALSE(records_[0].hasSimTime);
}

TEST_F(LoggingTest, TimeSourceStampsRecords)
{
    const int owner = 0;
    setLogTimeSource(&owner, [] { return SimTime::fromMs(1500); });
    inform("timed");
    setLogTimeSource(&owner, nullptr);
    inform("untimed again");

    ASSERT_EQ(records_.size(), 2u);
    EXPECT_TRUE(records_[0].hasSimTime);
    EXPECT_EQ(records_[0].simTime, SimTime::fromMs(1500));
    EXPECT_FALSE(records_[1].hasSimTime);
}

TEST_F(LoggingTest, StaleOwnerCannotUnregisterTheCurrentSource)
{
    const int ownerA = 0, ownerB = 0;
    setLogTimeSource(&ownerA, [] { return SimTime::fromMs(1); });
    setLogTimeSource(&ownerB, [] { return SimTime::fromMs(2); });
    // A destroyed out of order must not strip B's clock.
    setLogTimeSource(&ownerA, nullptr);
    inform("still timed by B");
    ASSERT_EQ(records_.size(), 1u);
    EXPECT_TRUE(records_[0].hasSimTime);
    EXPECT_EQ(records_[0].simTime, SimTime::fromMs(2));
    setLogTimeSource(&ownerB, nullptr);
}

TEST_F(LoggingTest, SuppressedInformDoesNotReachTheSink)
{
    setVerbose(false);
    inform("muted");
    warn("warnings always flow");
    ASSERT_EQ(records_.size(), 1u);
    EXPECT_EQ(records_[0].level, LogRecord::Level::Warn);
}

TEST(LogLevelStringTest, NamesEveryLevel)
{
    EXPECT_STREQ(logLevelString(LogRecord::Level::Info), "info");
    EXPECT_STREQ(logLevelString(LogRecord::Level::Warn), "warn");
    EXPECT_STREQ(logLevelString(LogRecord::Level::Fatal), "fatal");
    EXPECT_STREQ(logLevelString(LogRecord::Level::Panic), "panic");
}

} // namespace
} // namespace gpusc
