/** @file Unit tests for SimTime. */

#include <gtest/gtest.h>

#include "util/sim_time.h"

namespace gpusc {
namespace {

using namespace gpusc::sim_literals;

TEST(SimTimeTest, DefaultIsZero)
{
    EXPECT_EQ(SimTime().ns(), 0);
}

TEST(SimTimeTest, FactoryConversions)
{
    EXPECT_EQ(SimTime::fromNs(1500).ns(), 1500);
    EXPECT_EQ(SimTime::fromUs(2).ns(), 2000);
    EXPECT_EQ(SimTime::fromMs(3).ns(), 3000000);
    EXPECT_EQ(SimTime::fromSeconds(1.5).ns(), 1500000000);
}

TEST(SimTimeTest, TruncatingAccessors)
{
    const SimTime t = SimTime::fromNs(1999999);
    EXPECT_EQ(t.us(), 1999);
    EXPECT_EQ(t.ms(), 1);
    EXPECT_DOUBLE_EQ(t.seconds(), 1999999e-9);
    EXPECT_DOUBLE_EQ(t.millis(), 1.999999);
}

TEST(SimTimeTest, Literals)
{
    EXPECT_EQ((5_ns).ns(), 5);
    EXPECT_EQ((5_us).ns(), 5000);
    EXPECT_EQ((5_ms).ns(), 5000000);
    EXPECT_EQ((5_s).ns(), 5000000000LL);
}

TEST(SimTimeTest, Arithmetic)
{
    EXPECT_EQ((3_ms + 2_ms).ms(), 5);
    EXPECT_EQ((3_ms - 2_ms).ms(), 1);
    EXPECT_EQ((3_ms * 4).ms(), 12);
    EXPECT_EQ((12_ms / 4).ms(), 3);
    SimTime t = 1_ms;
    t += 2_ms;
    EXPECT_EQ(t.ms(), 3);
    t -= 1_ms;
    EXPECT_EQ(t.ms(), 2);
}

TEST(SimTimeTest, Comparisons)
{
    EXPECT_LT(1_ms, 2_ms);
    EXPECT_LE(2_ms, 2_ms);
    EXPECT_GT(3_ms, 2_ms);
    EXPECT_EQ(1000_us, 1_ms);
    EXPECT_NE(1_ns, 2_ns);
}

TEST(SimTimeTest, Scaled)
{
    EXPECT_EQ((10_ms).scaled(0.5).ms(), 5);
    EXPECT_EQ((10_ns).scaled(1.25).ns(), 13); // rounds to nearest
}

TEST(SimTimeTest, NegativeSpans)
{
    const SimTime d = 1_ms - 3_ms;
    EXPECT_EQ(d.ns(), -2000000);
    EXPECT_LT(d, SimTime());
}

TEST(SimTimeTest, MaxActsAsInfinity)
{
    EXPECT_GT(SimTime::max(), SimTime::fromSeconds(1e9));
}

TEST(SimTimeTest, ToStringPicksUnits)
{
    EXPECT_EQ(SimTime::fromNs(12).toString(), "12ns");
    EXPECT_NE(SimTime::fromUs(12).toString().find("us"),
              std::string::npos);
    EXPECT_NE(SimTime::fromMs(12).toString().find("ms"),
              std::string::npos);
    EXPECT_NE(SimTime::fromSeconds(12).toString().find("s"),
              std::string::npos);
}

TEST(SimTimeTest, FromSecondsRounds)
{
    EXPECT_EQ(SimTime::fromSeconds(1e-9 * 0.6).ns(), 1);
    EXPECT_EQ(SimTime::fromSeconds(1e-9 * 0.4).ns(), 0);
}

} // namespace
} // namespace gpusc
