/** @file Unit tests for the table renderer. */

#include <gtest/gtest.h>

#include "util/table.h"

namespace gpusc {
namespace {

TEST(TableTest, RendersHeaderAndRows)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("| alpha"), std::string::npos);
    EXPECT_NE(out.find("| 22"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, ColumnsAlign)
{
    Table t({"h", "x"});
    t.addRow({"longcell", "1"});
    const std::string out = t.render();
    // Every line between separators must have the same length.
    std::size_t lineLen = std::string::npos;
    std::size_t pos = 0;
    while (pos < out.size()) {
        const std::size_t end = out.find('\n', pos);
        const std::size_t len = end - pos;
        if (lineLen == std::string::npos)
            lineLen = len;
        EXPECT_EQ(len, lineLen);
        pos = end + 1;
    }
}

TEST(TableTest, NumFormatsDecimals)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(TableTest, PctFormatsRatio)
{
    EXPECT_EQ(Table::pct(0.5), "50.0%");
    EXPECT_EQ(Table::pct(0.123, 2), "12.30%");
}

TEST(TableDeathTest, RowArityMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

TEST(TableDeathTest, EmptyHeaderPanics)
{
    EXPECT_DEATH(Table({}), "empty header");
}

} // namespace
} // namespace gpusc
