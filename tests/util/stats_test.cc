/** @file Unit tests for the statistics helpers. */

#include <gtest/gtest.h>

#include "util/stats.h"

namespace gpusc {
namespace {

TEST(RunningStatTest, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatTest, KnownValues)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12); // sample variance
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, SingleValueHasZeroVariance)
{
    RunningStat s;
    s.add(3.5);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 3.5);
    EXPECT_EQ(s.max(), 3.5);
}

TEST(SamplesTest, QuantilesInterpolate)
{
    Samples s;
    for (double x : {1.0, 2.0, 3.0, 4.0, 5.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.125), 1.5);
}

TEST(SamplesTest, MeanAndStddev)
{
    Samples s;
    for (double x : {2.0, 4.0, 6.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(SamplesTest, EmptyIsSafe)
{
    Samples s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.quantile(0.5), 0.0);
}

TEST(SamplesTest, SingleSampleIsEveryQuantile)
{
    Samples s;
    s.add(7.25);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 7.25);
    EXPECT_DOUBLE_EQ(s.median(), 7.25);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 7.25);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(SamplesTest, QuantileSortsUnorderedInput)
{
    Samples s;
    for (double x : {9.0, 1.0, 5.0, 3.0, 7.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.median(), 5.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 9.0);
    // Quantiles are monotone in q.
    double prev = s.quantile(0.0);
    for (double q = 0.1; q <= 1.0; q += 0.1) {
        EXPECT_GE(s.quantile(q), prev);
        prev = s.quantile(q);
    }
}

TEST(SamplesDeathTest, QuantileOutOfRangePanics)
{
    Samples s;
    s.add(1.0);
    EXPECT_DEATH((void)s.quantile(1.5), "outside");
}

TEST(HistogramTest, BinsAndCounts)
{
    Histogram h(0.0, 10.0, 5);
    for (double x : {0.5, 1.5, 2.5, 2.6, 9.9})
        h.add(x);
    EXPECT_EQ(h.bins(), 5u);
    EXPECT_EQ(h.binCount(0), 2u); // [0,2)
    EXPECT_EQ(h.binCount(1), 2u); // [2,4)
    EXPECT_EQ(h.binCount(4), 1u); // [8,10)
    EXPECT_EQ(h.total(), 5u);
}

TEST(HistogramTest, OutOfRangeClampsToEdgeBins)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-5.0);
    h.add(50.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
}

TEST(HistogramTest, FractionBelow)
{
    Histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(double(i * 10)); // 0,10,...,90
    EXPECT_DOUBLE_EQ(h.fractionBelow(50.0), 0.5);
    EXPECT_DOUBLE_EQ(h.fractionBelow(1000.0), 1.0);
    EXPECT_DOUBLE_EQ(h.fractionBelow(0.0), 0.0);
}

TEST(HistogramTest, BinEdges)
{
    Histogram h(10.0, 20.0, 4);
    EXPECT_DOUBLE_EQ(h.binLow(0), 10.0);
    EXPECT_DOUBLE_EQ(h.binHigh(0), 12.5);
    EXPECT_DOUBLE_EQ(h.binLow(3), 17.5);
}

TEST(HistogramTest, RenderContainsBars)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.1);
    h.add(0.2);
    const std::string out = h.render(10);
    EXPECT_NE(out.find('#'), std::string::npos);
    EXPECT_NE(out.find('\n'), std::string::npos);
}

TEST(HistogramTest, ClampedAddsStillCountTowardsTotals)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-100.0);
    h.add(5.0);
    h.add(1e9);
    EXPECT_EQ(h.total(), 3u);
    // fractionBelow answers from the raw values, so an overflow
    // clamped into the top bin still counts as >= the upper edge.
    EXPECT_DOUBLE_EQ(h.fractionBelow(10.0), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(h.fractionBelow(0.0), 1.0 / 3.0);
}

TEST(RunningStatTest, NegativeValuesTrackExtrema)
{
    RunningStat s;
    for (double x : {-3.0, -1.0, -2.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), -1.0);
    EXPECT_DOUBLE_EQ(s.mean(), -2.0);
}

TEST(HistogramDeathTest, BadRangePanics)
{
    EXPECT_DEATH(Histogram(1.0, 1.0, 4), "bad range");
    EXPECT_DEATH(Histogram(0.0, 1.0, 0), "bad range");
}

} // namespace
} // namespace gpusc
