/** @file Unit + device-level tests for the kgsl defense stack. */

#include <gtest/gtest.h>

#include <memory>

#include "gpu/model.h"
#include "gpu/render_engine.h"
#include "kgsl/defense.h"
#include "kgsl/device.h"
#include "kgsl/msm_kgsl.h"
#include "obs/telemetry.h"
#include "util/event_queue.h"

namespace gpusc::kgsl {
namespace {

using namespace gpusc::sim_literals;

const ProcessContext kAttacker{100, "untrusted_app"};

TEST(DefenseConfigTest, LabelComposesActiveDials)
{
    EXPECT_EQ(DefenseConfig{}.label(), "stock");
    EXPECT_FALSE(DefenseConfig{}.any());

    DefenseConfig rate;
    rate.readsPerSecond = 48.0;
    EXPECT_EQ(rate.label(), "rate48");
    EXPECT_TRUE(rate.any());
    rate.overBudget = DefenseConfig::OverBudget::Stale;
    EXPECT_EQ(rate.label(), "rate48-stale");

    DefenseConfig stack;
    stack.rbac = true;
    stack.readsPerSecond = 64.0;
    stack.quantStep = 512;
    stack.noiseAmplitude = 32;
    EXPECT_EQ(stack.label(), "rbac+rate64+quant512+noise32");
    stack.restrictOpen = true;
    EXPECT_EQ(stack.label(), "rbac-open+rate64+quant512+noise32");
}

TEST(DefendedPolicyTest, TokenBucketThrottlesThenRefills)
{
    DefenseConfig cfg;
    cfg.readsPerSecond = 10.0;
    cfg.burst = 2.0;
    const DefendedPolicy p(cfg);

    // The burst is served, then the bucket is dry.
    SimTime t;
    EXPECT_EQ(p.onCounterRead(kAttacker, t), ReadVerdict::Allow);
    EXPECT_EQ(p.onCounterRead(kAttacker, t), ReadVerdict::Allow);
    EXPECT_EQ(p.onCounterRead(kAttacker, t), ReadVerdict::Throttle);

    // 150 ms at 10 tokens/s refills 1.5; the denied attempt above
    // cost the penalty, so exactly one read fits.
    t = t + 150_ms;
    EXPECT_EQ(p.onCounterRead(kAttacker, t), ReadVerdict::Allow);
    EXPECT_EQ(p.onCounterRead(kAttacker, t), ReadVerdict::Throttle);

    EXPECT_EQ(p.overhead().readsSeen, 5u);
    EXPECT_EQ(p.overhead().readsThrottled, 2u);
    EXPECT_GT(p.overhead().cpuNs, 0u);
}

TEST(DefendedPolicyTest, HammeringDigsTheBucketDeeper)
{
    DefenseConfig cfg;
    cfg.readsPerSecond = 10.0;
    cfg.burst = 2.0;
    const DefendedPolicy hammered(cfg);
    const DefendedPolicy paced(cfg);

    SimTime t;
    // Both clients burn the burst...
    for (int i = 0; i < 2; ++i) {
        EXPECT_EQ(hammered.onCounterRead(kAttacker, t),
                  ReadVerdict::Allow);
        EXPECT_EQ(paced.onCounterRead(kAttacker, t),
                  ReadVerdict::Allow);
    }
    // ...then one of them hammers 50 denied attempts.
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(hammered.onCounterRead(kAttacker, t),
                  ReadVerdict::Throttle);

    // After 200 ms (2 tokens refilled) the paced client reads again;
    // the hammerer is still paying off its penalty debt.
    t = t + 200_ms;
    EXPECT_EQ(paced.onCounterRead(kAttacker, t), ReadVerdict::Allow);
    EXPECT_EQ(hammered.onCounterRead(kAttacker, t),
              ReadVerdict::Throttle);
}

TEST(DefendedPolicyTest, SeparateClientsGetSeparateBuckets)
{
    DefenseConfig cfg;
    cfg.readsPerSecond = 10.0;
    cfg.burst = 1.0;
    const DefendedPolicy p(cfg);
    const ProcessContext other{200, "gpu_profiler"};

    const SimTime t;
    EXPECT_EQ(p.onCounterRead(kAttacker, t), ReadVerdict::Allow);
    EXPECT_EQ(p.onCounterRead(kAttacker, t), ReadVerdict::Throttle);
    // A different pid still has its own full bucket.
    EXPECT_EQ(p.onCounterRead(other, t), ReadVerdict::Allow);
}

TEST(DefendedPolicyTest, StaleModeServesTheCachedTotals)
{
    DefenseConfig cfg;
    cfg.readsPerSecond = 10.0;
    cfg.burst = 1.0;
    cfg.overBudget = DefenseConfig::OverBudget::Stale;
    const DefendedPolicy p(cfg);

    const SimTime t;
    // Nothing served yet: over budget degrades to Throttle (no cache
    // to repeat). Burn the burst first.
    EXPECT_EQ(p.onCounterRead(kAttacker, t), ReadVerdict::Allow);
    gpu::CounterTotals served{};
    served.fill(1234);
    p.transformTotals(kAttacker, served);

    EXPECT_EQ(p.onCounterRead(kAttacker, t), ReadVerdict::Stale);
    gpu::CounterTotals stale{};
    ASSERT_TRUE(p.staleTotals(kAttacker, stale));
    EXPECT_EQ(stale, served);
    EXPECT_GT(p.overhead().staleServes, 0u);
}

TEST(DefendedPolicyTest, StaleWithoutCacheFallsBackToThrottle)
{
    DefenseConfig cfg;
    cfg.readsPerSecond = 10.0;
    cfg.burst = 0.5; // first read is already over budget
    cfg.overBudget = DefenseConfig::OverBudget::Stale;
    const DefendedPolicy p(cfg);
    EXPECT_EQ(p.onCounterRead(kAttacker, SimTime()),
              ReadVerdict::Throttle);
    gpu::CounterTotals out{};
    EXPECT_FALSE(p.staleTotals(kAttacker, out));
}

TEST(DefendedPolicyTest, QuantizationFloorsToTheLattice)
{
    DefenseConfig cfg;
    cfg.quantStep = 100;
    const DefendedPolicy p(cfg);

    gpu::CounterTotals totals{};
    for (std::size_t i = 0; i < totals.size(); ++i)
        totals[i] = 1000 + 37 * i;
    const gpu::CounterTotals raw = totals;
    p.transformTotals(kAttacker, totals);
    for (std::size_t i = 0; i < totals.size(); ++i) {
        EXPECT_EQ(totals[i] % 100, 0u);
        EXPECT_LE(totals[i], raw[i]);
        EXPECT_LT(raw[i] - totals[i], 100u);
    }
    EXPECT_EQ(p.overhead().valuesQuantized, totals.size());
}

TEST(DefendedPolicyTest, NoiseIsMonotoneAdditiveAndDeterministic)
{
    DefenseConfig cfg;
    cfg.noiseAmplitude = 50;
    const DefendedPolicy a(cfg);
    const DefendedPolicy b(cfg);

    gpu::CounterTotals prevA{};
    for (int read = 0; read < 32; ++read) {
        gpu::CounterTotals raw{};
        raw.fill(std::uint64_t(1000 * read));
        gpu::CounterTotals ta = raw, tb = raw;
        a.transformTotals(kAttacker, ta);
        b.transformTotals(kAttacker, tb);
        // Same config + same read sequence -> bit-identical noise.
        EXPECT_EQ(ta, tb);
        for (std::size_t i = 0; i < ta.size(); ++i) {
            // Noise only ever adds...
            EXPECT_GE(ta[i], raw[i]);
            // ...and the defended stream stays monotone.
            EXPECT_GE(ta[i], prevA[i]);
        }
        prevA = ta;
    }
    EXPECT_GT(a.overhead().valuesNoised, 0u);
}

TEST(DefendedPolicyTest, BareRbacCountsAccessChecks)
{
    DefenseConfig cfg;
    cfg.rbac = true;
    const DefendedPolicy p(cfg);
    EXPECT_FALSE(
        p.allowIoctl(kAttacker, IOCTL_KGSL_PERFCOUNTER_READ));
    EXPECT_TRUE(p.allowIoctl({1, "gpu_profiler"},
                             IOCTL_KGSL_PERFCOUNTER_READ));
    EXPECT_EQ(p.overhead().accessChecks, 2u);
    EXPECT_GT(p.overhead().cpuNs, 0u);
    EXPECT_TRUE(p.overhead().any());
}

/** Device-level fixture with a defended policy installed. */
class DefendedDeviceTest : public ::testing::Test
{
  protected:
    int
    openReserved(const ProcessContext &proc = kAttacker)
    {
        const int fd = dev().open(proc);
        EXPECT_GE(fd, 0);
        kgsl_perfcounter_get get;
        get.groupid = KGSL_PERFCOUNTER_GROUP_LRZ;
        get.countable = 18; // VISIBLE_PIXEL
        EXPECT_EQ(dev().ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, &get),
                  0);
        return fd;
    }

    int
    readOnce(int fd, std::uint64_t *value = nullptr)
    {
        kgsl_perfcounter_read_group entry;
        entry.groupid = KGSL_PERFCOUNTER_GROUP_LRZ;
        entry.countable = 18;
        kgsl_perfcounter_read req;
        req.reads = &entry;
        req.count = 1;
        const int rc =
            dev().ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, &req);
        if (rc == 0 && value)
            *value = entry.value;
        return rc;
    }

    KgslDevice &
    dev()
    {
        if (!dev_)
            dev_ = std::make_unique<KgslDevice>(engine_, policy());
        return *dev_;
    }

    DefendedPolicy &
    policy()
    {
        if (!policy_)
            policy_ = std::make_unique<DefendedPolicy>(cfg_);
        return *policy_;
    }

    EventQueue eq_;
    gpu::RenderEngine engine_{eq_, gpu::adrenoModel(650), 1};
    DefenseConfig cfg_;
    std::unique_ptr<DefendedPolicy> policy_;
    std::unique_ptr<KgslDevice> dev_;
};

TEST_F(DefendedDeviceTest, ThrottledReadReturnsEagainAndAudits)
{
    cfg_.readsPerSecond = 10.0;
    cfg_.burst = 1.0;
    obs::Telemetry tel;
    dev().setTelemetry(&tel);

    const int fd = openReserved();
    EXPECT_EQ(readOnce(fd), 0);
    EXPECT_EQ(readOnce(fd), -KGSL_EAGAIN);

    EXPECT_EQ(tel.metrics.counter("kgsl.reads_throttled").value(), 1u);
    EXPECT_EQ(tel.audit.count(obs::Decision::ThrottledRead), 1u);
    const std::vector<obs::AuditRecord> records = tel.audit.snapshot();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].stage, obs::Stage::Kgsl);
    EXPECT_EQ(records[0].label, "untrusted_app");
    // Defense interventions are not funnel decisions.
    EXPECT_EQ(tel.audit.changesAudited(), 0u);
}

TEST_F(DefendedDeviceTest, StaleReadRepeatsValuesAndAudits)
{
    cfg_.readsPerSecond = 10.0;
    cfg_.burst = 1.0;
    cfg_.overBudget = DefenseConfig::OverBudget::Stale;
    obs::Telemetry tel;
    dev().setTelemetry(&tel);

    const int fd = openReserved();
    std::uint64_t first = 0, second = 1;
    EXPECT_EQ(readOnce(fd, &first), 0);
    EXPECT_EQ(readOnce(fd, &second), 0); // over budget: stale serve
    EXPECT_EQ(second, first);
    EXPECT_EQ(tel.metrics.counter("kgsl.reads_stale").value(), 1u);
    EXPECT_EQ(tel.audit.count(obs::Decision::StaleServed), 1u);
}

TEST_F(DefendedDeviceTest, OpenDenialAuditsLikeIoctlDenial)
{
    cfg_.rbac = true;
    cfg_.restrictOpen = true;
    obs::Telemetry tel;
    dev().setTelemetry(&tel);

    // The unprivileged attacker cannot even open the node...
    EXPECT_EQ(dev().open(kAttacker), -KGSL_EACCES);
    // ...while a whitelisted role opens and reads as usual.
    const int fd = dev().open({50, "gpu_profiler"});
    EXPECT_GE(fd, 0);

    EXPECT_EQ(dev().policyDenialCount(), 1u);
    EXPECT_EQ(tel.metrics.counter("kgsl.policy_denials").value(), 1u);
    EXPECT_EQ(tel.audit.count(obs::Decision::PolicyDenied), 1u);
    const std::vector<obs::AuditRecord> records = tel.audit.snapshot();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].stage, obs::Stage::Kgsl);
    EXPECT_EQ(records[0].label, "open untrusted_app");
}

TEST_F(DefendedDeviceTest, HotSwapThrottlesAndSwapBackRestores)
{
    // Start against the stock policy...
    const StockPolicy stock;
    cfg_.readsPerSecond = 10.0;
    cfg_.burst = 1.0;
    DefendedPolicy &limited = policy();
    KgslDevice device{engine_, stock};

    const int fd = device.open(kAttacker);
    ASSERT_GE(fd, 0);
    kgsl_perfcounter_get get;
    get.groupid = KGSL_PERFCOUNTER_GROUP_LRZ;
    get.countable = 18;
    ASSERT_EQ(device.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, &get), 0);
    auto read = [&] {
        kgsl_perfcounter_read_group entry;
        entry.groupid = KGSL_PERFCOUNTER_GROUP_LRZ;
        entry.countable = 18;
        kgsl_perfcounter_read req;
        req.reads = &entry;
        req.count = 1;
        return device.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, &req);
    };
    EXPECT_EQ(read(), 0);
    EXPECT_EQ(read(), 0);

    // ...swap in the limiter mid-run: the open fd and its
    // reservations survive, but reads now meet the token bucket.
    device.setPolicy(limited);
    EXPECT_EQ(read(), 0); // burst
    EXPECT_EQ(read(), -KGSL_EAGAIN);

    // Swap back: full rate returns instantly, no re-reservation.
    device.setPolicy(stock);
    EXPECT_EQ(read(), 0);
    EXPECT_EQ(read(), 0);
    EXPECT_EQ(device.totalReservations(), 1u);
}

} // namespace
} // namespace gpusc::kgsl
