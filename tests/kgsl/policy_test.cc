/** @file Unit tests for the SELinux-style policies. */

#include <gtest/gtest.h>

#include "kgsl/msm_kgsl.h"
#include "kgsl/policy.h"

namespace gpusc::kgsl {
namespace {

TEST(StockPolicyTest, AllowsEverything)
{
    const StockPolicy p;
    const ProcessContext untrusted{100, "untrusted_app"};
    EXPECT_TRUE(p.allowOpen(untrusted));
    EXPECT_TRUE(p.allowIoctl(untrusted, IOCTL_KGSL_PERFCOUNTER_GET));
    EXPECT_TRUE(p.allowIoctl(untrusted, IOCTL_KGSL_PERFCOUNTER_READ));
    EXPECT_EQ(p.name(), "stock");
}

TEST(RbacPolicyTest, FiltersOnlyPerfcounterIoctls)
{
    const RbacPolicy p;
    const ProcessContext untrusted{100, "untrusted_app"};
    // PC ioctls denied...
    EXPECT_FALSE(p.allowIoctl(untrusted, IOCTL_KGSL_PERFCOUNTER_GET));
    EXPECT_FALSE(p.allowIoctl(untrusted, IOCTL_KGSL_PERFCOUNTER_PUT));
    EXPECT_FALSE(p.allowIoctl(untrusted, IOCTL_KGSL_PERFCOUNTER_READ));
    // ...but rendering ioctls and open() keep working, so graphics
    // drivers are unaffected (the paper's practicality requirement).
    EXPECT_TRUE(p.allowIoctl(untrusted, 0x1234));
    EXPECT_TRUE(p.allowOpen(untrusted));
}

TEST(RbacPolicyTest, WhitelistedRolesPass)
{
    const RbacPolicy p;
    EXPECT_TRUE(p.allowIoctl({1, "gpu_profiler"},
                             IOCTL_KGSL_PERFCOUNTER_READ));
    EXPECT_TRUE(p.allowIoctl({2, "platform_app"},
                             IOCTL_KGSL_PERFCOUNTER_GET));
    EXPECT_FALSE(
        p.allowIoctl({3, "shell"}, IOCTL_KGSL_PERFCOUNTER_GET));
}

TEST(RbacPolicyTest, CustomRoleSet)
{
    const RbacPolicy p({"my_special_role"});
    EXPECT_TRUE(p.allowIoctl({1, "my_special_role"},
                             IOCTL_KGSL_PERFCOUNTER_READ));
    EXPECT_FALSE(p.allowIoctl({1, "gpu_profiler"},
                              IOCTL_KGSL_PERFCOUNTER_READ));
    EXPECT_EQ(p.name(), "rbac");
}

TEST(RbacPolicyTest, DefaultOpenModeIsWorldOpenable)
{
    const RbacPolicy p;
    EXPECT_EQ(p.openMode(), RbacPolicy::OpenMode::AllowAll);
    EXPECT_TRUE(p.allowOpen({100, "untrusted_app"}));
    EXPECT_TRUE(p.allowOpen({101, "shell"}));
}

TEST(RbacPolicyTest, RestrictedOpenModeGatesByRole)
{
    const RbacPolicy p({"gpu_profiler", "platform_app"},
                       RbacPolicy::OpenMode::RestrictToRoles);
    EXPECT_EQ(p.openMode(), RbacPolicy::OpenMode::RestrictToRoles);
    // Unprivileged domains cannot even open the node...
    EXPECT_FALSE(p.allowOpen({100, "untrusted_app"}));
    EXPECT_FALSE(p.allowOpen({101, "shell"}));
    // ...while whitelisted roles open and use it as before.
    EXPECT_TRUE(p.allowOpen({50, "gpu_profiler"}));
    EXPECT_TRUE(p.allowOpen({51, "platform_app"}));
    EXPECT_TRUE(p.allowIoctl({50, "gpu_profiler"},
                             IOCTL_KGSL_PERFCOUNTER_READ));
}

TEST(RbacPolicyTest, RestrictedOpenRespectsCustomRoles)
{
    const RbacPolicy p({"my_special_role"},
                       RbacPolicy::OpenMode::RestrictToRoles);
    EXPECT_TRUE(p.allowOpen({1, "my_special_role"}));
    EXPECT_FALSE(p.allowOpen({2, "gpu_profiler"}));
}

TEST(SecurityPolicyTest, DegradationHooksDefaultToNoOps)
{
    const StockPolicy p;
    const ProcessContext proc{100, "untrusted_app"};
    EXPECT_EQ(p.onCounterRead(proc, SimTime()), ReadVerdict::Allow);
    gpu::CounterTotals totals{};
    totals.fill(42);
    const gpu::CounterTotals before = totals;
    p.transformTotals(proc, totals);
    EXPECT_EQ(totals, before);
    gpu::CounterTotals out{};
    EXPECT_FALSE(p.staleTotals(proc, out));
}

} // namespace
} // namespace gpusc::kgsl
