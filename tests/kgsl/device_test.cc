/** @file Unit tests for the simulated KGSL device file. */

#include <gtest/gtest.h>

#include "gpu/model.h"
#include "gpu/render_engine.h"
#include "kgsl/device.h"
#include "kgsl/msm_kgsl.h"
#include "util/event_queue.h"

namespace gpusc::kgsl {
namespace {

using namespace gpusc::sim_literals;

class KgslDeviceTest : public ::testing::Test
{
  protected:
    gfx::FrameScene
    quad()
    {
        gfx::FrameScene s;
        s.damage = gfx::Rect::ofSize(0, 0, 64, 64);
        s.add(s.damage, true, gfx::PrimTag::Background);
        return s;
    }

    int
    openReserved(const ProcessContext &proc = {100, "untrusted_app"})
    {
        const int fd = dev_.open(proc);
        EXPECT_GE(fd, 0);
        kgsl_perfcounter_get get;
        get.groupid = KGSL_PERFCOUNTER_GROUP_LRZ;
        get.countable = 18; // VISIBLE_PIXEL
        EXPECT_EQ(dev_.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, &get), 0);
        return fd;
    }

    std::uint64_t
    readPixel(int fd)
    {
        kgsl_perfcounter_read_group entry;
        entry.groupid = KGSL_PERFCOUNTER_GROUP_LRZ;
        entry.countable = 18;
        kgsl_perfcounter_read req;
        req.reads = &entry;
        req.count = 1;
        EXPECT_EQ(dev_.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, &req), 0);
        return entry.value;
    }

    EventQueue eq_;
    gpu::RenderEngine engine_{eq_, gpu::adrenoModel(650), 1};
    StockPolicy stock_;
    KgslDevice dev_{engine_, stock_};
};

TEST_F(KgslDeviceTest, DevicePathMatchesPaper)
{
    EXPECT_STREQ(KgslDevice::path(), "/dev/kgsl-3d0");
}

TEST_F(KgslDeviceTest, OpenCloseLifecycle)
{
    const int fd = dev_.open({100, "untrusted_app"});
    EXPECT_GE(fd, 3);
    EXPECT_EQ(dev_.close(fd), 0);
    EXPECT_EQ(dev_.close(fd), -KGSL_EBADF);
}

TEST_F(KgslDeviceTest, IoctlOnBadFd)
{
    kgsl_perfcounter_get get;
    EXPECT_EQ(dev_.ioctl(999, IOCTL_KGSL_PERFCOUNTER_GET, &get),
              -KGSL_EBADF);
}

TEST_F(KgslDeviceTest, GetUnknownCounterIsEinval)
{
    const int fd = dev_.open({100, "untrusted_app"});
    kgsl_perfcounter_get get;
    get.groupid = 0x55; // no such group
    get.countable = 1;
    EXPECT_EQ(dev_.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, &get),
              -KGSL_EINVAL);
}

TEST_F(KgslDeviceTest, ReadWithoutGetIsEinval)
{
    const int fd = dev_.open({100, "untrusted_app"});
    kgsl_perfcounter_read_group entry;
    entry.groupid = KGSL_PERFCOUNTER_GROUP_LRZ;
    entry.countable = 18;
    kgsl_perfcounter_read req;
    req.reads = &entry;
    req.count = 1;
    EXPECT_EQ(dev_.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, &req),
              -KGSL_EINVAL);
}

TEST_F(KgslDeviceTest, NullPointersAreEfault)
{
    const int fd = dev_.open({100, "untrusted_app"});
    EXPECT_EQ(dev_.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, nullptr),
              -KGSL_EFAULT);
    kgsl_perfcounter_read req;
    req.reads = nullptr;
    req.count = 3;
    EXPECT_EQ(dev_.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, &req),
              -KGSL_EFAULT);
}

TEST_F(KgslDeviceTest, UnknownRequestIsEinval)
{
    const int fd = dev_.open({100, "untrusted_app"});
    int dummy = 0;
    EXPECT_EQ(dev_.ioctl(fd, 0xDEAD, &dummy), -KGSL_EINVAL);
}

TEST_F(KgslDeviceTest, ReadsSeeGlobalGpuWork)
{
    const int fd = openReserved();
    EXPECT_EQ(readPixel(fd), 0u);
    // Work submitted by *other* processes (the UI) is visible — the
    // leak the paper exploits.
    const SimTime end = engine_.submit(quad());
    eq_.runUntil(end + 1_ms);
    EXPECT_EQ(readPixel(fd), 64u * 64u);
}

TEST_F(KgslDeviceTest, GetReturnsRegisterOffsets)
{
    const int fd = dev_.open({100, "untrusted_app"});
    kgsl_perfcounter_get get;
    get.groupid = KGSL_PERFCOUNTER_GROUP_RAS;
    get.countable = 4;
    ASSERT_EQ(dev_.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, &get), 0);
    EXPECT_NE(get.offset, 0u);
    EXPECT_NE(get.offset_hi, get.offset);
}

TEST_F(KgslDeviceTest, PutReleasesReservation)
{
    const int fd = openReserved();
    kgsl_perfcounter_put put;
    put.groupid = KGSL_PERFCOUNTER_GROUP_LRZ;
    put.countable = 18;
    EXPECT_EQ(dev_.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_PUT, &put), 0);
    // Reading after PUT is rejected again.
    kgsl_perfcounter_read_group entry;
    entry.groupid = KGSL_PERFCOUNTER_GROUP_LRZ;
    entry.countable = 18;
    kgsl_perfcounter_read req;
    req.reads = &entry;
    req.count = 1;
    EXPECT_EQ(dev_.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, &req),
              -KGSL_EINVAL);
}

TEST_F(KgslDeviceTest, IoctlCountAccumulates)
{
    const std::uint64_t before = dev_.ioctlCount();
    const int fd = openReserved();
    readPixel(fd);
    readPixel(fd);
    EXPECT_EQ(dev_.ioctlCount(), before + 3); // 1 GET + 2 READ
}

TEST_F(KgslDeviceTest, RbacDeniesUntrustedPerfcounterIoctls)
{
    const RbacPolicy rbac;
    dev_.setPolicy(rbac);
    const int fd = dev_.open({100, "untrusted_app"});
    ASSERT_GE(fd, 0); // rendering path must keep working
    kgsl_perfcounter_get get;
    get.groupid = KGSL_PERFCOUNTER_GROUP_LRZ;
    get.countable = 18;
    EXPECT_EQ(dev_.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, &get),
              -KGSL_EPERM);
}

TEST_F(KgslDeviceTest, RbacAllowsProfilerRole)
{
    const RbacPolicy rbac;
    dev_.setPolicy(rbac);
    const int fd = dev_.open({50, "gpu_profiler"});
    kgsl_perfcounter_get get;
    get.groupid = KGSL_PERFCOUNTER_GROUP_LRZ;
    get.countable = 18;
    EXPECT_EQ(dev_.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, &get), 0);
}

TEST_F(KgslDeviceTest, BusyPercentageNode)
{
    EXPECT_NEAR(dev_.gpuBusyPercentage(), 0.0, 1e-9);
    engine_.submitCompute(100_ms);
    eq_.runUntil(eq_.now() + 50_ms);
    EXPECT_GT(dev_.gpuBusyPercentage(), 50.0);
}

TEST(KgslHardwareTest, ImplementedCountables)
{
    // All Table 1 selections exist...
    for (std::size_t i = 0; i < gpu::kNumSelectedCounters; ++i) {
        const auto id = gpu::counterId(gpu::SelectedCounter(i));
        EXPECT_TRUE(hardwareImplementsCounter(id.group, id.countable));
    }
    // ...plus neighbouring countables for enumeration, but not
    // arbitrary ids.
    EXPECT_TRUE(
        hardwareImplementsCounter(KGSL_PERFCOUNTER_GROUP_LRZ, 0));
    EXPECT_FALSE(
        hardwareImplementsCounter(KGSL_PERFCOUNTER_GROUP_LRZ, 60));
    EXPECT_FALSE(hardwareImplementsCounter(0x77, 0));
}

TEST(KgslPolicyTelemetryTest, DenialsAreCountedAndAudited)
{
    EventQueue eq;
    gpu::RenderEngine engine{eq, gpu::adrenoModel(650), 1};
    RbacPolicy rbac;
    KgslDevice dev{engine, rbac};
    obs::Telemetry tel;
    dev.setTelemetry(&tel);

    // Open is allowed under RBAC; the perfcounter ioctls are not.
    const int fd = dev.open({100, "untrusted_app"});
    ASSERT_GE(fd, 0);
    kgsl_perfcounter_get get;
    get.groupid = KGSL_PERFCOUNTER_GROUP_LRZ;
    get.countable = 18;
    EXPECT_EQ(dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, &get),
              -KGSL_EPERM);
    kgsl_perfcounter_read req;
    req.reads = nullptr;
    req.count = 0;
    EXPECT_EQ(dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, &req),
              -KGSL_EPERM);

    EXPECT_EQ(dev.policyDenialCount(), 2u);
    EXPECT_EQ(tel.metrics.counter("kgsl.policy_denials").value(), 2u);
    EXPECT_EQ(tel.audit.count(obs::Decision::PolicyDenied), 2u);
    const std::vector<obs::AuditRecord> records = tel.audit.snapshot();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].stage, obs::Stage::Kgsl);
    EXPECT_EQ(records[0].label, "perfcounter-get untrusted_app");
    EXPECT_EQ(records[1].label, "perfcounter-read untrusted_app");
    // Policy denials never enter the change funnel.
    EXPECT_EQ(tel.audit.changesAudited(), 0u);
}

TEST(KgslPolicyTelemetryTest, DeniedCallsCountWithoutTelemetryToo)
{
    EventQueue eq;
    gpu::RenderEngine engine{eq, gpu::adrenoModel(650), 1};
    const RbacPolicy rbac({"gpu_profiler"});
    KgslDevice dev{engine, rbac};
    // RBAC never blocks open() — graphics clients keep working.
    const int fd = dev.open({101, "shell"});
    ASSERT_GE(fd, 0);
    EXPECT_EQ(dev.policyDenialCount(), 0u);
    // No telemetry attached: the plain counter still advances.
    kgsl_perfcounter_get get;
    get.groupid = KGSL_PERFCOUNTER_GROUP_LRZ;
    get.countable = 18;
    EXPECT_EQ(dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, &get),
              -KGSL_EPERM);
    EXPECT_EQ(dev.policyDenialCount(), 1u);
}

TEST(KgslIoctlCodesTest, EncodingMatchesLinuxLayout)
{
    // _IOWR('\x09', 0x38, struct kgsl_perfcounter_get)
    EXPECT_EQ(IOCTL_KGSL_PERFCOUNTER_GET & 0xff, 0x38u);
    EXPECT_EQ((IOCTL_KGSL_PERFCOUNTER_GET >> 8) & 0xff, 0x09u);
    EXPECT_EQ((IOCTL_KGSL_PERFCOUNTER_GET >> 16) & 0x3fff,
              sizeof(kgsl_perfcounter_get));
    EXPECT_EQ(IOCTL_KGSL_PERFCOUNTER_READ & 0xff, 0x3Bu);
}

} // namespace
} // namespace gpusc::kgsl
