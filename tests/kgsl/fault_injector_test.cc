/** @file FaultInjector unit tests + KgslDevice integration. */

#include <gtest/gtest.h>

#include <vector>

#include "android/device.h"
#include "kgsl/device.h"
#include "kgsl/fault_injector.h"
#include "util/event_queue.h"

namespace gpusc::kgsl {
namespace {

using namespace gpusc::sim_literals;

constexpr std::uint32_t kVpc = KGSL_PERFCOUNTER_GROUP_VPC;

android::DeviceConfig
quiet()
{
    android::DeviceConfig cfg;
    cfg.notificationMeanInterval = SimTime();
    return cfg;
}

gpu::CounterTotals
uniformTotals(std::uint64_t v)
{
    gpu::CounterTotals t{};
    t.fill(v);
    return t;
}

TEST(FaultInjectorTest, EmptyPlanInjectsNothing)
{
    EventQueue eq;
    FaultInjector fi(eq, FaultPlan{});
    EXPECT_FALSE(fi.plan().any());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(fi.ioctlFault(), 0);
    EXPECT_TRUE(fi.tryReserve(kVpc));
    gpu::CounterTotals t = uniformTotals(12345);
    fi.transform(t);
    EXPECT_EQ(t, uniformTotals(12345));
    EXPECT_EQ(fi.resetEpoch(), 0u);
    EXPECT_EQ(fi.stats().transientErrors, 0u);
    EXPECT_EQ(fi.stats().busyDenials, 0u);
    EXPECT_EQ(fi.stats().powerCollapses, 0u);
    EXPECT_EQ(fi.stats().deviceResets, 0u);
}

TEST(FaultInjectorTest, CertainTransientErrorsAlternateEintrEagain)
{
    EventQueue eq;
    FaultPlan plan;
    plan.transientErrorProb = 1.0;
    FaultInjector fi(eq, plan);
    EXPECT_EQ(fi.ioctlFault(), -KGSL_EINTR);
    EXPECT_EQ(fi.ioctlFault(), -KGSL_EAGAIN);
    EXPECT_EQ(fi.ioctlFault(), -KGSL_EINTR);
    EXPECT_EQ(fi.stats().transientErrors, 3u);
}

TEST(FaultInjectorTest, TransientErrorRateTracksProbability)
{
    EventQueue eq;
    FaultPlan plan;
    plan.transientErrorProb = 0.25;
    FaultInjector fi(eq, plan);
    int faults = 0;
    for (int i = 0; i < 2000; ++i)
        faults += fi.ioctlFault() != 0;
    EXPECT_NEAR(faults, 500, 100);
    EXPECT_EQ(fi.stats().transientErrors, std::uint64_t(faults));
}

TEST(FaultInjectorTest, RegisterPoolExhaustsAndReleases)
{
    EventQueue eq;
    FaultPlan plan;
    plan.groupRegisters[kVpc] = 2;
    FaultInjector fi(eq, plan);
    EXPECT_TRUE(fi.tryReserve(kVpc));
    EXPECT_TRUE(fi.tryReserve(kVpc));
    EXPECT_FALSE(fi.tryReserve(kVpc));
    EXPECT_EQ(fi.stats().busyDenials, 1u);
    EXPECT_EQ(fi.heldRegisters(), 2u);
    fi.release(kVpc);
    EXPECT_TRUE(fi.tryReserve(kVpc));
    // Groups absent from the plan are unlimited.
    for (int i = 0; i < 20; ++i)
        EXPECT_TRUE(fi.tryReserve(KGSL_PERFCOUNTER_GROUP_LRZ));
}

TEST(FaultInjectorTest, CompetitorHoldsRegistersUntilExit)
{
    EventQueue eq;
    FaultPlan plan;
    plan.groupRegisters[kVpc] = 3;
    plan.competitors.push_back({kVpc, 3, SimTime::fromMs(1000)});
    FaultInjector fi(eq, plan);
    EXPECT_FALSE(fi.tryReserve(kVpc));
    eq.runUntil(SimTime::fromMs(1500));
    EXPECT_TRUE(fi.tryReserve(kVpc));
}

TEST(FaultInjectorTest, PowerCollapseRebasesLazily)
{
    EventQueue eq;
    FaultPlan plan;
    plan.powerCollapseInterval = SimTime::fromMs(1000);
    FaultInjector fi(eq, plan);

    // Within the first period: untouched.
    eq.runUntil(SimTime::fromMs(500));
    gpu::CounterTotals t = uniformTotals(1000);
    fi.transform(t);
    EXPECT_EQ(t, uniformTotals(1000));
    EXPECT_EQ(fi.stats().powerCollapses, 0u);

    // First read after the boundary becomes the new zero point.
    eq.runUntil(SimTime::fromMs(1500));
    t = uniformTotals(2000);
    fi.transform(t);
    EXPECT_EQ(t, uniformTotals(0));
    EXPECT_EQ(fi.stats().powerCollapses, 1u);

    // Later reads in the same period rebase against it.
    t = uniformTotals(2600);
    fi.transform(t);
    EXPECT_EQ(t, uniformTotals(600));

    // Skipping several boundaries counts each crossed period.
    eq.runUntil(SimTime::fromMs(4200));
    t = uniformTotals(9000);
    fi.transform(t);
    EXPECT_EQ(t, uniformTotals(0));
    EXPECT_EQ(fi.stats().powerCollapses, 4u);
}

TEST(FaultInjectorTest, Wrap32OffsetBiasesUntilFirstCollapse)
{
    EventQueue eq;
    FaultPlan plan;
    plan.wrap32 = true;
    plan.wrap32Offset = 0xFFFFFF00ull;
    plan.powerCollapseInterval = SimTime::fromMs(1000);
    FaultInjector fi(eq, plan);

    // Pre-collapse the offset wraps values past the 32-bit boundary.
    gpu::CounterTotals t = uniformTotals(0x200);
    fi.transform(t);
    EXPECT_EQ(t, uniformTotals(0x100));

    // The first collapse clears the accumulated bias too.
    eq.runUntil(SimTime::fromMs(1500));
    t = uniformTotals(5000);
    fi.transform(t);
    EXPECT_EQ(t, uniformTotals(0));
    t = uniformTotals(5600);
    fi.transform(t);
    EXPECT_EQ(t, uniformTotals(600));
}

TEST(FaultInjectorTest, Wrap32TruncatesWithoutCollapse)
{
    EventQueue eq;
    FaultPlan plan;
    plan.wrap32 = true;
    FaultInjector fi(eq, plan);
    gpu::CounterTotals t = uniformTotals((1ull << 32) + 77);
    fi.transform(t);
    EXPECT_EQ(t, uniformTotals(77));
}

TEST(FaultInjectorTest, ResetEpochCountsScriptedResetsOnce)
{
    EventQueue eq;
    FaultPlan plan;
    plan.deviceResets = {SimTime::fromMs(1000), SimTime::fromMs(2000)};
    FaultInjector fi(eq, plan);
    EXPECT_EQ(fi.resetEpoch(), 0u);
    eq.runUntil(SimTime::fromMs(1200));
    EXPECT_EQ(fi.resetEpoch(), 1u);
    EXPECT_EQ(fi.resetEpoch(), 1u); // idempotent
    EXPECT_EQ(fi.stats().deviceResets, 1u);
    eq.runUntil(SimTime::fromMs(2500));
    EXPECT_EQ(fi.resetEpoch(), 2u);
    EXPECT_EQ(fi.stats().deviceResets, 2u);
}

TEST(FaultInjectorTest, ListenerObservesEveryFaultKind)
{
    EventQueue eq;
    FaultPlan plan;
    plan.transientErrorProb = 1.0;
    plan.groupRegisters[kVpc] = 0;
    plan.powerCollapseInterval = SimTime::fromMs(100);
    plan.deviceResets = {SimTime::fromMs(50)};
    FaultInjector fi(eq, plan);
    std::vector<FaultEvent> events;
    fi.setFaultListener(
        [&](const FaultEvent &ev) { events.push_back(ev); });

    (void)fi.ioctlFault();
    EXPECT_FALSE(fi.tryReserve(kVpc));
    eq.runUntil(SimTime::fromMs(150));
    gpu::CounterTotals t = uniformTotals(9);
    fi.transform(t);
    fi.resetEpoch();

    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].kind, FaultKind::TransientError);
    EXPECT_EQ(events[0].detail, std::uint64_t(KGSL_EINTR));
    EXPECT_EQ(events[1].kind, FaultKind::CounterBusy);
    EXPECT_EQ(events[1].detail, std::uint64_t(kVpc));
    EXPECT_EQ(events[2].kind, FaultKind::PowerCollapse);
    EXPECT_EQ(events[2].time, SimTime::fromMs(150));
    EXPECT_EQ(events[3].kind, FaultKind::DeviceReset);
    EXPECT_EQ(events[3].detail, 1u);
}

TEST(FaultInjectorTest, FaultKindStringsAreStable)
{
    EXPECT_STREQ(faultKindString(FaultKind::TransientError),
                 "TransientError");
    EXPECT_STREQ(faultKindString(FaultKind::CounterBusy),
                 "CounterBusy");
    EXPECT_STREQ(faultKindString(FaultKind::PowerCollapse),
                 "PowerCollapse");
    EXPECT_STREQ(faultKindString(FaultKind::DeviceReset),
                 "DeviceReset");
}

// --- KgslDevice integration ----------------------------------------

TEST(FaultInjectorDeviceTest, TransientErrorsSurfaceOnGetAndRead)
{
    android::Device dev(quiet());
    FaultPlan plan;
    plan.transientErrorProb = 1.0;
    FaultInjector fi(dev.eq(), plan);
    dev.kgsl().setFaultInjector(&fi);

    const int fd = dev.kgsl().open(dev.attackerContext());
    ASSERT_GE(fd, 0);
    kgsl_perfcounter_get get;
    get.groupid = kVpc;
    get.countable = 9;
    EXPECT_EQ(dev.kgsl().ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, &get),
              -KGSL_EINTR);
    EXPECT_EQ(dev.kgsl().ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, &get),
              -KGSL_EAGAIN);
    // PUT is exempt so cleanup never fails transiently.
    kgsl_perfcounter_put put;
    put.groupid = kVpc;
    put.countable = 9;
    EXPECT_EQ(dev.kgsl().ioctl(fd, IOCTL_KGSL_PERFCOUNTER_PUT, &put),
              0);
    dev.kgsl().close(fd);
}

TEST(FaultInjectorDeviceTest, GetReturnsEbusyWhenGroupExhausted)
{
    android::Device dev(quiet());
    FaultPlan plan;
    plan.groupRegisters[kVpc] = 1;
    FaultInjector fi(dev.eq(), plan);
    dev.kgsl().setFaultInjector(&fi);

    const int fd = dev.kgsl().open(dev.attackerContext());
    ASSERT_GE(fd, 0);
    kgsl_perfcounter_get get;
    get.groupid = kVpc;
    get.countable = 9;
    EXPECT_EQ(dev.kgsl().ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, &get),
              0);
    // Re-GET of a held countable is free (refcounted driver).
    EXPECT_EQ(dev.kgsl().ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, &get),
              0);
    EXPECT_EQ(dev.kgsl().totalReservations(), 1u);

    get.countable = 10; // second register in the exhausted group
    EXPECT_EQ(dev.kgsl().ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, &get),
              -KGSL_EBUSY);

    kgsl_perfcounter_put put;
    put.groupid = kVpc;
    put.countable = 9;
    EXPECT_EQ(dev.kgsl().ioctl(fd, IOCTL_KGSL_PERFCOUNTER_PUT, &put),
              0);
    EXPECT_EQ(dev.kgsl().ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, &get),
              0);
    dev.kgsl().close(fd);
    EXPECT_EQ(dev.kgsl().totalReservations(), 0u);
    EXPECT_EQ(fi.heldRegisters(), 0u);
}

TEST(FaultInjectorDeviceTest, ResetStalesDescriptorUntilReopen)
{
    android::Device dev(quiet());
    FaultPlan plan;
    plan.deviceResets = {SimTime::fromMs(1000)};
    FaultInjector fi(dev.eq(), plan);
    dev.kgsl().setFaultInjector(&fi);

    const int fd = dev.kgsl().open(dev.attackerContext());
    ASSERT_GE(fd, 0);
    kgsl_perfcounter_get get;
    get.groupid = kVpc;
    get.countable = 9;
    ASSERT_EQ(dev.kgsl().ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, &get),
              0);
    EXPECT_EQ(dev.kgsl().totalReservations(), 1u);

    dev.runFor(1500_ms);
    // Hang recovery freed the fd's registers; every ioctl is ENODEV.
    EXPECT_EQ(dev.kgsl().ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, &get),
              -KGSL_ENODEV);
    EXPECT_EQ(dev.kgsl().ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, &get),
              -KGSL_ENODEV);
    EXPECT_EQ(dev.kgsl().totalReservations(), 0u);
    EXPECT_EQ(fi.stats().deviceResets, 1u);

    // A fresh descriptor belongs to the new epoch and works.
    const int fd2 = dev.kgsl().open(dev.attackerContext());
    ASSERT_GE(fd2, 0);
    EXPECT_EQ(dev.kgsl().ioctl(fd2, IOCTL_KGSL_PERFCOUNTER_GET, &get),
              0);
    dev.kgsl().close(fd);
    dev.kgsl().close(fd2);
    EXPECT_EQ(fi.heldRegisters(), 0u);
}

TEST(FaultInjectorDeviceTest, ReadValuesPassThroughTransform)
{
    android::Device dev(quiet());
    FaultPlan plan;
    plan.powerCollapseInterval = SimTime::fromMs(100);
    FaultInjector fi(dev.eq(), plan);
    dev.kgsl().setFaultInjector(&fi);
    dev.boot();

    const int fd = dev.kgsl().open(dev.attackerContext());
    ASSERT_GE(fd, 0);
    kgsl_perfcounter_get get;
    get.groupid = std::uint32_t(gpu::CounterGroup::LRZ);
    get.countable = 13; // LRZ_VISIBLE_PRIM_AFTER_LRZ
    ASSERT_EQ(dev.kgsl().ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, &get),
              0);

    dev.launchTargetApp();
    dev.runFor(500_ms); // crosses collapse boundaries while rendering

    kgsl_perfcounter_read_group entry;
    entry.groupid = get.groupid;
    entry.countable = get.countable;
    kgsl_perfcounter_read req;
    req.reads = &entry;
    req.count = 1;
    ASSERT_EQ(dev.kgsl().ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, &req),
              0);
    EXPECT_GT(fi.stats().powerCollapses, 0u);
    // The rebased value can only be a fraction of the raw total.
    const gpu::CounterTotals raw = dev.engine().readAll();
    EXPECT_LT(entry.value,
              raw[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ] + 1);
    dev.kgsl().close(fd);
}

} // namespace
} // namespace gpusc::kgsl
