/**
 * @file
 * Backend conformance for the SIMD kernel layer: every compiled-in
 * backend must reproduce the pinned scalar reference kernels
 * (simd/kernels_ref.h) bit for bit — same sums, same argmin winner,
 * same tie-breaks — across seeded random panels covering the shapes
 * that stress lane handling: odd dims, dims below the vector width,
 * empty panels, single rows, padded tail lanes, exact ties, and NaN
 * queries. "Close" is not good enough: the classifiers' replay==live
 * and worker-count-independence guarantees assume classify results
 * do not depend on which backend ran them.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "simd/kernels.h"
#include "simd/kernels_ref.h"
#include "util/rng.h"

namespace gpusc::simd {
namespace {

/** Pin one backend for a scope; restores the previous on exit. */
class BackendGuard
{
  public:
    explicit BackendGuard(Backend b)
        : prev_(activeBackend()), ok_(forceBackend(b))
    {
    }
    ~BackendGuard() { forceBackend(prev_); }
    BackendGuard(const BackendGuard &) = delete;
    BackendGuard &operator=(const BackendGuard &) = delete;
    bool ok() const { return ok_; }

  private:
    Backend prev_;
    bool ok_;
};

std::vector<Backend>
availableBackends()
{
    std::vector<Backend> v;
    for (const Backend b :
         {Backend::Scalar, Backend::Avx2, Backend::Neon})
        if (backendAvailable(b))
            v.push_back(b);
    return v;
}

std::vector<double>
randomBlock(Rng &rng, std::size_t n)
{
    std::vector<double> v(n);
    for (double &x : v)
        x = rng.uniform(-8.0, 8.0);
    return v;
}

/** Bitwise double equality (distinguishes -0.0/0.0, any NaN is
 *  compared by payload — exactly what "bit-identical" means). */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

constexpr std::size_t kRowCounts[] = {0, 1, 2, 3, 4, 5, 8, 13};
constexpr std::size_t kDimCounts[] = {1, 2, 3, 4, 7, 8, 11, 16, 17};

TEST(KernelConformanceTest, PanelKernelsMatchReferenceBitExact)
{
    Rng rng(777001);
    for (const std::size_t rows : kRowCounts) {
        for (const std::size_t dims : kDimCounts) {
            const std::vector<double> block =
                randomBlock(rng, rows * dims);
            Panel panel;
            panel.packContiguous(block.data(), rows, dims, dims);

            std::vector<std::vector<double>> queries;
            for (int q = 0; q < 6; ++q)
                queries.push_back(randomBlock(rng, dims));
            if (rows > 0) // zero-distance query: earliest early exit
                queries.push_back({block.begin(),
                                   block.begin() + std::ptrdiff_t(dims)});
            const std::vector<double> weights = randomBlock(rng, dims);

            for (const Backend b : availableBackends()) {
                const BackendGuard guard(b);
                ASSERT_TRUE(guard.ok());
                const Kernels &k = kernels();
                for (const std::vector<double> &q : queries) {
                    std::vector<double> got(rows), want(rows);
                    k.l2sqToMany(q.data(), panel, got.data());
                    ref::l2sqToMany(q.data(), panel, want.data());
                    for (std::size_t r = 0; r < rows; ++r)
                        EXPECT_TRUE(sameBits(got[r], want[r]))
                            << backendName(b) << " l2sqToMany rows="
                            << rows << " dims=" << dims << " r=" << r;

                    k.wl2sqToMany(q.data(), weights.data(), panel,
                                  got.data());
                    ref::wl2sqToMany(q.data(), weights.data(), panel,
                                     want.data());
                    for (std::size_t r = 0; r < rows; ++r)
                        EXPECT_TRUE(sameBits(got[r], want[r]))
                            << backendName(b) << " wl2sqToMany rows="
                            << rows << " dims=" << dims << " r=" << r;

                    const Argmin ga = k.argminL2(q.data(), panel);
                    const Argmin wa = ref::argminL2(q.data(), panel);
                    EXPECT_EQ(ga.index, wa.index)
                        << backendName(b) << " argminL2 rows=" << rows
                        << " dims=" << dims;
                    EXPECT_TRUE(sameBits(ga.sq, wa.sq))
                        << backendName(b) << " argminL2 rows=" << rows
                        << " dims=" << dims;

                    const Argmin gw =
                        k.argminWL2(q.data(), weights.data(), panel);
                    const Argmin ww =
                        ref::argminWL2(q.data(), weights.data(), panel);
                    EXPECT_EQ(gw.index, ww.index)
                        << backendName(b) << " argminWL2 rows=" << rows
                        << " dims=" << dims;
                    EXPECT_TRUE(sameBits(gw.sq, ww.sq))
                        << backendName(b) << " argminWL2 rows=" << rows
                        << " dims=" << dims;
                }

                // M x K tile against the per-query reference.
                const std::size_t m = queries.size();
                std::vector<double> qblock(m * dims);
                for (std::size_t q = 0; q < m; ++q)
                    std::copy(queries[q].begin(), queries[q].end(),
                              qblock.begin() + std::ptrdiff_t(q * dims));
                std::vector<double> gotTile(m * rows),
                    wantTile(m * rows);
                if (rows > 0) {
                    k.l2sqTile(qblock.data(), m, dims, panel,
                               gotTile.data(), rows);
                    ref::l2sqTile(qblock.data(), m, dims, panel,
                                  wantTile.data(), rows);
                    for (std::size_t i = 0; i < m * rows; ++i)
                        EXPECT_TRUE(sameBits(gotTile[i], wantTile[i]))
                            << backendName(b) << " l2sqTile rows="
                            << rows << " dims=" << dims << " i=" << i;
                }
            }
        }
    }
}

TEST(KernelConformanceTest, PairKernelsMatchReferenceBitExact)
{
    Rng rng(777002);
    for (const std::size_t dims : kDimCounts) {
        const std::vector<double> a = randomBlock(rng, dims);
        const std::vector<double> b2 = randomBlock(rng, dims);
        const std::vector<double> w = randomBlock(rng, dims);
        const double full = ref::l2sq(a.data(), b2.data(), dims);
        // Bounds: never-exits, exact-sum (Ge exits, Gt completes),
        // and always-exits-immediately.
        const double bounds[] = {
            std::numeric_limits<double>::infinity(), full, 0.0};

        for (const Backend b : availableBackends()) {
            const BackendGuard guard(b);
            ASSERT_TRUE(guard.ok());
            const Kernels &k = kernels();
            EXPECT_TRUE(sameBits(k.l2sq(a.data(), b2.data(), dims),
                                 full))
                << backendName(b) << " dims=" << dims;
            EXPECT_TRUE(sameBits(
                k.wl2sq(a.data(), b2.data(), w.data(), dims),
                ref::wl2sq(a.data(), b2.data(), w.data(), dims)))
                << backendName(b) << " dims=" << dims;
            EXPECT_TRUE(sameBits(k.dot(a.data(), b2.data(), dims),
                                 ref::dot(a.data(), b2.data(), dims)))
                << backendName(b) << " dims=" << dims;
            EXPECT_TRUE(sameBits(k.sumSquares(a.data(), dims),
                                 ref::sumSquares(a.data(), dims)))
                << backendName(b) << " dims=" << dims;
            for (const double bound : bounds) {
                EXPECT_TRUE(sameBits(
                    k.l2sqEarlyExitGe(a.data(), b2.data(), dims, bound),
                    ref::l2sqEarlyExitGe(a.data(), b2.data(), dims,
                                         bound)))
                    << backendName(b) << " dims=" << dims
                    << " bound=" << bound;
                EXPECT_TRUE(sameBits(
                    k.l2sqEarlyExitGt(a.data(), b2.data(), dims, bound),
                    ref::l2sqEarlyExitGt(a.data(), b2.data(), dims,
                                         bound)))
                    << backendName(b) << " dims=" << dims
                    << " bound=" << bound;
            }
        }
    }
}

TEST(KernelConformanceTest, ArgminTiesBreakToLowestIndex)
{
    // Duplicate rows (including across lane-group boundaries) must
    // resolve to the first occurrence in every backend.
    const std::size_t dims = 3;
    std::vector<double> block;
    const std::vector<double> rowA = {1.0, 2.0, 3.0};
    const std::vector<double> rowB = {4.0, 5.0, 6.0};
    for (int i = 0; i < 9; ++i) {
        const std::vector<double> &r = i % 2 ? rowA : rowB;
        block.insert(block.end(), r.begin(), r.end());
    }
    Panel panel;
    panel.packContiguous(block.data(), 9, dims, dims);

    for (const Backend b : availableBackends()) {
        const BackendGuard guard(b);
        ASSERT_TRUE(guard.ok());
        const Argmin got = kernels().argminL2(rowA.data(), panel);
        EXPECT_EQ(got.index, 1u) << backendName(b);
        EXPECT_EQ(got.sq, 0.0) << backendName(b);
    }

    // Flat-array argmin: first strict minimum wins.
    const std::vector<double> vals = {3.0, 1.0, 1.0, 2.0};
    for (const Backend b : availableBackends()) {
        const BackendGuard guard(b);
        ASSERT_TRUE(guard.ok());
        EXPECT_EQ(kernels().argmin(vals.data(), vals.size()), 1u)
            << backendName(b);
        EXPECT_EQ(kernels().argmin(vals.data(), 0), Argmin::npos)
            << backendName(b);
    }
}

TEST(KernelConformanceTest, EmptyPanelAndNanQueries)
{
    Rng rng(777003);
    const Panel empty;
    const std::vector<double> w = {1.0, 1.0, 1.0};
    for (const Backend b : availableBackends()) {
        const BackendGuard guard(b);
        ASSERT_TRUE(guard.ok());
        const double q[3] = {1.0, 2.0, 3.0};
        const Argmin a = kernels().argminL2(q, empty);
        EXPECT_EQ(a.index, Argmin::npos) << backendName(b);
        EXPECT_TRUE(std::isinf(a.sq)) << backendName(b);
    }

    // NaN queries: no row can win (every comparison is false) — and
    // every backend must agree on that.
    const std::size_t dims = 5;
    const std::vector<double> block = randomBlock(rng, 7 * dims);
    Panel panel;
    panel.packContiguous(block.data(), 7, dims, dims);
    std::vector<double> nanQuery(dims, 0.5);
    nanQuery[2] = std::numeric_limits<double>::quiet_NaN();
    const Argmin want = ref::argminL2(nanQuery.data(), panel);
    for (const Backend b : availableBackends()) {
        const BackendGuard guard(b);
        ASSERT_TRUE(guard.ok());
        const Argmin got = kernels().argminL2(nanQuery.data(), panel);
        EXPECT_EQ(got.index, want.index) << backendName(b);
        EXPECT_TRUE(sameBits(got.sq, want.sq)) << backendName(b);
    }
}

TEST(KernelConformanceTest, ScalarBackendIsTheReferenceTable)
{
    // The scalar backend must *be* the pinned reference, not merely
    // agree with it — guards against someone "optimising" the anchor.
    const BackendGuard guard(Backend::Scalar);
    ASSERT_TRUE(guard.ok());
    const Kernels &k = kernels();
    EXPECT_EQ(k.l2sq, &ref::l2sq);
    EXPECT_EQ(k.l2sqEarlyExitGe, &ref::l2sqEarlyExitGe);
    EXPECT_EQ(k.l2sqEarlyExitGt, &ref::l2sqEarlyExitGt);
    EXPECT_EQ(k.wl2sq, &ref::wl2sq);
    EXPECT_EQ(k.dot, &ref::dot);
    EXPECT_EQ(k.sumSquares, &ref::sumSquares);
    EXPECT_EQ(k.argminL2, &ref::argminL2);
    EXPECT_EQ(k.argminWL2, &ref::argminWL2);
    EXPECT_EQ(k.argmin, &ref::argmin);
}

} // namespace
} // namespace gpusc::simd
