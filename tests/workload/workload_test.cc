/** @file Unit tests for typing models, credentials and load models. */

#include <gtest/gtest.h>

#include <cctype>

#include "workload/credential.h"
#include "workload/load.h"
#include "workload/typing_model.h"

namespace gpusc::workload {
namespace {

TEST(TypingModelTest, FiveVolunteers)
{
    EXPECT_EQ(volunteerProfiles().size(), 5u);
    // Heterogeneity, as in Fig. 16: the extremes differ noticeably.
    double minInterval = 1e9, maxInterval = 0;
    for (const auto &v : volunteerProfiles()) {
        minInterval = std::min(minInterval, v.meanIntervalMs);
        maxInterval = std::max(maxInterval, v.meanIntervalMs);
    }
    EXPECT_GT(maxInterval / minInterval, 1.5);
}

TEST(TypingModelTest, VolunteerStatsMatchProfile)
{
    TypingModel m = TypingModel::forVolunteer(3, 7);
    double dSum = 0, iSum = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        dSum += m.nextDuration().seconds();
        iSum += m.nextInterval().seconds();
    }
    EXPECT_NEAR(dSum / n * 1000, m.profile().meanDurationMs, 8.0);
    EXPECT_NEAR(iSum / n * 1000, m.profile().meanIntervalMs, 20.0);
}

TEST(TypingModelTest, DurationsAreHumanlyPlausible)
{
    TypingModel m = TypingModel::forVolunteer(0, 9);
    for (int i = 0; i < 2000; ++i) {
        const double d = m.nextDuration().seconds();
        EXPECT_GE(d, 0.035);
        EXPECT_LT(d, 0.5);
    }
}

TEST(TypingModelDeathTest, BadVolunteerIndexIsFatal)
{
    EXPECT_DEATH((void)TypingModel::forVolunteer(9, 1),
                 "out of range");
}

class SpeedBandSweep : public ::testing::TestWithParam<TypingSpeed>
{
};

TEST_P(SpeedBandSweep, IntervalsRespectTheBand)
{
    TypingModel m = TypingModel::forSpeed(GetParam(), 17);
    for (int i = 0; i < 2000; ++i) {
        const double s = m.nextInterval().seconds();
        switch (GetParam()) {
          case TypingSpeed::Fast:
            EXPECT_LT(s, kFastMaxIntervalS);
            break;
          case TypingSpeed::Medium:
            EXPECT_GE(s, kFastMaxIntervalS);
            EXPECT_LE(s, kSlowMinIntervalS);
            break;
          case TypingSpeed::Slow:
            EXPECT_GT(s, kSlowMinIntervalS);
            break;
          case TypingSpeed::Mixed:
            EXPECT_GT(s, 0.0);
            break;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Bands, SpeedBandSweep,
                         ::testing::Values(TypingSpeed::Fast,
                                           TypingSpeed::Medium,
                                           TypingSpeed::Slow,
                                           TypingSpeed::Mixed));

TEST(TypingModelTest, SlowTypistsHoldKeysLonger)
{
    TypingModel fast = TypingModel::forSpeed(TypingSpeed::Fast, 3);
    TypingModel slow = TypingModel::forSpeed(TypingSpeed::Slow, 3);
    double fSum = 0, sSum = 0;
    for (int i = 0; i < 3000; ++i) {
        fSum += fast.nextDuration().seconds();
        sSum += slow.nextDuration().seconds();
    }
    EXPECT_GT(sSum, fSum * 1.3);
}

TEST(CredentialTest, ExactLength)
{
    CredentialGenerator gen(1);
    for (std::size_t len : {1u, 8u, 16u, 64u})
        EXPECT_EQ(gen.next(len).size(), len);
}

TEST(CredentialTest, OnlyTypableCharacters)
{
    CredentialGenerator gen(2);
    const std::string s = gen.next(2000);
    for (char c : s) {
        const bool ok =
            std::islower(static_cast<unsigned char>(c)) ||
            std::isupper(static_cast<unsigned char>(c)) ||
            std::isdigit(static_cast<unsigned char>(c)) ||
            CredentialGenerator::symbolSet().find(c) !=
                std::string::npos;
        EXPECT_TRUE(ok) << "bad char " << int(c);
    }
}

TEST(CredentialTest, MixControlsClasses)
{
    CredentialGenerator gen(3, CharsetMix::lowerOnly());
    const std::string s = gen.next(500);
    for (char c : s)
        EXPECT_TRUE(std::islower(static_cast<unsigned char>(c)));
}

TEST(CredentialTest, DefaultMixFrequencies)
{
    CredentialGenerator gen(4);
    const std::string s = gen.next(20000);
    int lower = 0, digit = 0;
    for (char c : s) {
        lower += std::islower(static_cast<unsigned char>(c)) != 0;
        digit += std::isdigit(static_cast<unsigned char>(c)) != 0;
    }
    EXPECT_NEAR(lower / 20000.0, 0.55, 0.03);
    EXPECT_NEAR(digit / 20000.0, 0.22, 0.03);
}

TEST(CharGroupTest, Classification)
{
    EXPECT_EQ(charGroupOf('a'), CharGroup::Lower);
    EXPECT_EQ(charGroupOf('Z'), CharGroup::Upper);
    EXPECT_EQ(charGroupOf('0'), CharGroup::Number);
    EXPECT_EQ(charGroupOf('#'), CharGroup::Symbol);
    EXPECT_EQ(charGroupName(CharGroup::Symbol), "symbol");
}

TEST(CpuLoadModelTest, ZeroLoadNeverDelays)
{
    CpuLoadModel m(0.0, 5);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(m.nextWakeupDelay().ns(), 0);
}

TEST(CpuLoadModelTest, DelayGrowsWithUtilization)
{
    CpuLoadModel low(0.25, 5), high(0.9, 5);
    double lowSum = 0, highSum = 0;
    for (int i = 0; i < 5000; ++i) {
        lowSum += low.nextWakeupDelay().seconds();
        highSum += high.nextWakeupDelay().seconds();
    }
    EXPECT_GT(highSum, lowSum * 5.0);
}

TEST(CpuLoadModelTest, DelaysAreBounded)
{
    CpuLoadModel m(0.99, 7);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LE(m.nextWakeupDelay().seconds(), 0.301);
}

} // namespace
} // namespace gpusc::workload
