/** @file Unit tests for the typist and session drivers. */

#include <gtest/gtest.h>

#include "workload/load.h"
#include "workload/session.h"
#include "workload/typist.h"

namespace gpusc::workload {
namespace {

using namespace gpusc::sim_literals;

android::DeviceConfig
quietConfig()
{
    android::DeviceConfig cfg;
    cfg.notificationMeanInterval = SimTime();
    return cfg;
}

void
runToDone(android::Device &dev, const Typist &typist)
{
    const SimTime deadline = dev.eq().now() + SimTime::fromSeconds(120);
    while (!typist.done() && dev.eq().now() < deadline)
        dev.runFor(100_ms);
    ASSERT_TRUE(typist.done());
}

TEST(TypistTest, CommitsEveryCharacter)
{
    android::Device dev(quietConfig());
    dev.launchTargetApp();
    Typist typist(dev, TypingModel::forVolunteer(0, 1), 2);
    typist.type("hello", 100_ms);
    runToDone(dev, typist);
    EXPECT_EQ(dev.app().textLength(), 5u);
    EXPECT_EQ(typist.pressTimes().size(), 5u);
}

TEST(TypistTest, MixedCaseAndSymbolsCommitCorrectly)
{
    android::Device dev(quietConfig());
    dev.launchTargetApp();
    Typist typist(dev, TypingModel::forVolunteer(1, 3), 4);
    typist.type("aB3,x", 100_ms);
    runToDone(dev, typist);
    EXPECT_EQ(dev.app().textLength(), 5u);
    // Page switches add physical presses beyond the 5 characters.
    EXPECT_GT(typist.physicalPresses(), 5u);
}

TEST(TypistTest, PressTimesAreStrictlyOrdered)
{
    android::Device dev(quietConfig());
    dev.launchTargetApp();
    Typist typist(dev, TypingModel::forVolunteer(2, 5), 6);
    typist.type("abcdef", 100_ms);
    runToDone(dev, typist);
    const auto &times = typist.pressTimes();
    for (std::size_t i = 1; i < times.size(); ++i)
        EXPECT_GT(times[i], times[i - 1]);
}

TEST(TypistTest, CorrectionsRestoreTheIntendedText)
{
    android::Device dev(quietConfig());
    dev.launchTargetApp();
    Typist typist(dev, TypingModel::forVolunteer(0, 7), 8);
    typist.setTypoProb(0.5); // lots of corrections
    typist.type("secret", 100_ms);
    runToDone(dev, typist);
    // Whatever detours happened, the committed field must end with
    // exactly the intended text length.
    EXPECT_EQ(dev.app().textLength(), 6u);
}

TEST(TypistTest, DoneCallbackFires)
{
    android::Device dev(quietConfig());
    dev.launchTargetApp();
    Typist typist(dev, TypingModel::forVolunteer(0, 9), 10);
    bool done = false;
    typist.type("ab", 50_ms, [&] { done = true; });
    runToDone(dev, typist);
    EXPECT_TRUE(done);
}

TEST(TypistDeathTest, OverlappingRunsPanic)
{
    android::Device dev(quietConfig());
    dev.launchTargetApp();
    Typist typist(dev, TypingModel::forVolunteer(0, 11), 12);
    typist.type("abc", 100_ms);
    EXPECT_DEATH(typist.type("def", 100_ms), "previous run");
}

TEST(GpuLoadGeneratorTest, RaisesBusyPercentage)
{
    android::Device dev(quietConfig());
    dev.boot();
    GpuLoadGenerator load(dev, 0.5, 13);
    load.start();
    dev.runFor(1_s);
    EXPECT_GT(dev.kgsl().gpuBusyPercentage(), 25.0);
    load.stop();
    dev.runFor(1_s);
    EXPECT_LT(dev.kgsl().gpuBusyPercentage(), 10.0);
}

TEST(GpuLoadGeneratorTest, ComputeWorkLeavesCountersAlone)
{
    android::Device dev(quietConfig());
    dev.boot();
    const auto before = dev.engine().readAll();
    GpuLoadGenerator load(dev, 0.75, 14);
    load.start();
    dev.runFor(2_s);
    EXPECT_EQ(dev.engine().readAll(), before);
}

TEST(SessionDriverTest, ProducesEpisodesAndFinishes)
{
    android::Device dev(quietConfig());
    SessionConfig cfg;
    cfg.numInputs = 2;
    cfg.freeUseDuration = 2_s;
    cfg.seed = 15;
    SessionDriver session(dev, cfg);
    session.start();
    const SimTime deadline = SimTime::fromSeconds(180);
    while (!session.done() && dev.eq().now() < deadline)
        dev.runFor(500_ms);
    ASSERT_TRUE(session.done());
    ASSERT_EQ(session.episodes().size(), 2u);
    for (const InputEpisode &ep : session.episodes()) {
        EXPECT_GE(ep.truth.size(), cfg.minLen);
        EXPECT_LE(ep.truth.size(), cfg.maxLen);
        EXPECT_GT(ep.end, ep.start);
    }
}

} // namespace
} // namespace gpusc::workload
