/**
 * @file
 * Figure 19: inference accuracy across target applications — six
 * native login screens and three of them inside Chrome.
 */

#include <cstdio>

#include "android/app.h"
#include "bench_util.h"

using namespace gpusc;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const int trials =
        argc > 1 ? std::atoi(argv[1]) : bench::kTrialsQuick;
    bench::banner("Figure 19",
                  "accuracy per target application (" +
                      std::to_string(trials) + " texts each)");

    Table table({"target", "text accuracy", "key-press accuracy"});
    std::vector<std::string> targets = android::nativeAppNames();
    for (const auto &web : android::webAppNames())
        targets.push_back(web);

    for (const auto &app : targets) {
        eval::ExperimentConfig cfg;
        cfg.device.app = app;
        cfg.seed = 1900 + std::hash<std::string>{}(app) % 97;
        const eval::AccuracyStats stats =
            bench::accuracyCell(cfg, trials);
        table.addRow({app, Table::pct(stats.textAccuracy()),
                      Table::pct(stats.charAccuracy())});
    }
    table.print();
    std::printf("\nPaper: accuracy >80%% on every target; per-key "
                "signatures come from the keyboard, so the target app "
                "barely matters.\n");
    return 0;
}
