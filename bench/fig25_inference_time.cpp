/**
 * @file
 * Figure 25 (+ §7.6 overhead numbers): computing time needed for
 * eavesdropping. Uses google-benchmark to time the classifier on one
 * observed counter change, then reproduces the paper's histogram over
 * 3,300 real key-press inferences and reports the model-size claims.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "attack/model_store.h"
#include "attack/trainer.h"
#include "bench_util.h"
#include "util/stats.h"

using namespace gpusc;

namespace {

const attack::SignatureModel &
model()
{
    static const attack::SignatureModel &m = [] {
        android::DeviceConfig cfg;
        const attack::OfflineTrainer trainer;
        return std::cref(
            attack::ModelStore::global().getOrTrain(cfg, trainer));
    }();
    return m;
}

void
BM_ClassifyChange(benchmark::State &state)
{
    const auto &m = model();
    gpu::CounterVec delta = m.signatures().front().centroid;
    for (auto _ : state) {
        auto match = m.classify(delta);
        benchmark::DoNotOptimize(match);
    }
}
BENCHMARK(BM_ClassifyChange);

void
BM_EchoDecode(benchmark::State &state)
{
    const auto &m = model();
    gpu::CounterVec delta = m.echoBase();
    for (auto _ : state) {
        auto len = m.decodeEchoLength(delta);
        benchmark::DoNotOptimize(len);
    }
}
BENCHMARK(BM_EchoDecode);

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::banner("Figure 25", "inference latency per key press");

    // End-to-end: run enough credentials to collect ~3,300 key-press
    // inferences, timing each classification on the host clock.
    eval::ExperimentConfig cfg;
    cfg.seed = 2500;
    eval::ExperimentRunner runner(cfg, attack::ModelStore::global());
    runner.runTrials(280, 12, 12); // ~3,360 key presses
    const Samples &lat = runner.eavesdropper().inferenceLatenciesUs();

    Histogram hist(0.0, 30.0, 15);
    for (double us : lat.values())
        hist.add(us);
    std::printf("inference-time histogram over %zu changes "
                "(microseconds):\n%s",
                lat.count(), hist.render().c_str());
    std::printf("p50=%.2fus p95=%.2fus p99=%.2fus max=%.2fus\n",
                lat.quantile(0.5), lat.quantile(0.95),
                lat.quantile(0.99), lat.max());
    std::printf("fraction inferred within 0.1ms: %.2f%% (paper: "
                ">95%%)\n\n",
                100.0 * hist.fractionBelow(100.0));

    // §7.6: model sizes.
    const auto &m = model();
    const double bytes = double(m.byteSize());
    std::printf("classification model size: %.2f kB (paper: 3.59 kB "
                "average)\n",
                bytes / 1024.0);
    std::printf("3,000 preloaded models would occupy %.2f MB (paper: "
                "13.40 MB; Play Store cap 100 MB)\n\n",
                3000.0 * bytes / (1024.0 * 1024.0));

    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
