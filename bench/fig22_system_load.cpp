/**
 * @file
 * Figure 22: impact of concurrent CPU and GPU workloads. CPU
 * contention delays the sampler's wakeups until separate UI frames
 * merge into one observed change; a background GPU workload both
 * delays UI rendering and pollutes the counter stream.
 */

#include <cstdio>

#include "bench_util.h"

using namespace gpusc;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const int trials =
        argc > 1 ? std::atoi(argv[1]) : bench::kTrialsQuick;
    bench::banner("Figure 22", "accuracy under concurrent CPU/GPU "
                               "load (" +
                                   std::to_string(trials) +
                                   " texts per cell)");

    Table cpuTable({"CPU load", "text accuracy", "key-press accuracy"});
    for (int load : {0, 25, 50, 75, 100}) {
        eval::ExperimentConfig cfg;
        cfg.cpuLoad = load / 100.0;
        cfg.seed = 2200 + load;
        const eval::AccuracyStats stats =
            bench::accuracyCell(cfg, trials);
        cpuTable.addRow({std::to_string(load) + "%",
                         Table::pct(stats.textAccuracy()),
                         Table::pct(stats.charAccuracy())});
    }
    cpuTable.print("(a) inference with CPU workloads");

    Table gpuTable({"GPU load", "text accuracy", "key-press accuracy",
                    "gpu_busy_percentage"});
    for (int load : {0, 25, 50, 75}) {
        eval::ExperimentConfig cfg;
        cfg.gpuLoad = load / 100.0;
        cfg.seed = 2250 + load;
        eval::ExperimentRunner runner(cfg,
                                      attack::ModelStore::global());
        const eval::AccuracyStats stats =
            runner.runTrials(trials, 8, 16);
        gpuTable.addRow(
            {std::to_string(load) + "%",
             Table::pct(stats.textAccuracy()),
             Table::pct(stats.charAccuracy()),
             Table::num(runner.device().kgsl().gpuBusyPercentage(), 1) +
                 "%"});
    }
    gpuTable.print("\n(b) inference with GPU workloads");

    std::printf("\nPaper: negligible reduction below 50%% CPU / 25%% "
                "GPU load; drops toward 60%% when either reaches "
                "75%%.\n");
    return 0;
}
