/**
 * @file
 * Ablation: greedy online inference (Algorithm 1) versus whole-trace
 * offline inference — the accuracy/timeliness trade-off the paper
 * flags after Algorithm 1 ("addressing this limitation requires
 * knowledge about the entire trace ... eavesdropping can only be done
 * after the user input finishes").
 */

#include <cstdio>

#include "attack/trace_inference.h"
#include "bench_util.h"

using namespace gpusc;
using namespace gpusc::sim_literals;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const int trials = argc > 1 ? std::atoi(argv[1]) : 150;
    bench::banner("Ablation (online vs whole-trace)",
                  "Algorithm 1's greedy choices vs global "
                  "segmentation, " +
                      std::to_string(trials) + " texts");

    eval::ExperimentConfig cfg;
    cfg.seed = 3500;
    cfg.attackParams.recordTrace = true;
    // Offline scoring has no correction/app-switch context here.
    cfg.attackParams.correctionTracking = false;
    eval::ExperimentRunner runner(cfg, attack::ModelStore::global());

    const attack::TraceInference offline(
        runner.model(), cfg.attackParams.inference);

    eval::AccuracyStats online, wholeTrace;
    std::size_t traceCursor = 0;
    for (int i = 0; i < trials; ++i) {
        // Type one credential; remember where its trace starts.
        const auto &fullTrace = runner.eavesdropper().trace();
        traceCursor = fullTrace.size();
        workload::CredentialGenerator creds(4000 + std::uint64_t(i));
        const eval::TrialResult r = runner.runTrial(creds.next(12));
        online.add(r.truth, r.inferred);

        std::vector<attack::PcChange> slice(
            fullTrace.begin() + std::ptrdiff_t(traceCursor),
            fullTrace.end());
        const auto keys = offline.infer(slice);
        wholeTrace.add(r.truth,
                       attack::TraceInference::textFrom(keys));
    }

    Table table({"inference", "text accuracy", "key-press accuracy",
                 "available when"});
    table.addRow({"online (Algorithm 1, greedy)",
                  Table::pct(online.textAccuracy()),
                  Table::pct(online.charAccuracy()),
                  "immediately (<0.1ms/key)"});
    table.addRow({"whole-trace (offline DP)",
                  Table::pct(wholeTrace.textAccuracy()),
                  Table::pct(wholeTrace.charAccuracy()),
                  "after the input finishes"});
    table.print();
    if (wholeTrace.charAccuracy() > online.charAccuracy() + 1e-9) {
        std::printf("\nThe global segmentation repairs the greedy "
                    "algorithm's mis-paired splits at the cost of "
                    "timeliness — the trade-off §5.1 predicts.\n");
    } else {
        std::printf("\nOn these traces the greedy algorithm is "
                    "already (near-)optimal: split pieces arrive in "
                    "clean adjacent pairs, so the extra knowledge of "
                    "the whole trace buys little — i.e. the paper's "
                    "choice of the timely greedy algorithm costs "
                    "almost no accuracy.\n");
    }
    return 0;
}
