/**
 * @file
 * Ablation: device/configuration recognition (paper Fig. 4's
 * "device recognition" step). The attacking app ships a store of
 * models and must pick the right one from the first counter changes
 * alone. This bench measures recognition accuracy and the end-to-end
 * cost of a store-based attack versus a known-configuration attack.
 */

#include <cstdio>

#include "bench_util.h"

using namespace gpusc;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const int trials = argc > 1 ? std::atoi(argv[1]) : 40;
    bench::banner("Ablation (device recognition)",
                  "picking the right model out of a preloaded store");

    // Build a store covering a matrix of configurations.
    struct ConfigSpec
    {
        const char *phone;
        const char *keyboard;
    };
    const ConfigSpec configs[] = {
        {"oneplus8pro", "gboard"}, {"oneplus8pro", "swift"},
        {"pixel2", "gboard"},      {"s21", "gboard"},
        {"oneplus7pro", "gboard"}, {"oneplus8pro", "go"},
    };
    const attack::OfflineTrainer trainer;
    for (const ConfigSpec &spec : configs) {
        android::DeviceConfig cfg;
        cfg.phone = spec.phone;
        cfg.keyboard = spec.keyboard;
        attack::ModelStore::global().getOrTrain(cfg, trainer);
    }

    Table table({"victim config", "recognised", "text accuracy",
                 "key-press accuracy"});
    int correctRecognitions = 0;
    for (const ConfigSpec &spec : configs) {
        eval::ExperimentConfig cfg;
        cfg.device.phone = spec.phone;
        cfg.device.keyboard = spec.keyboard;
        cfg.useDeviceRecognition = true;
        cfg.seed = 3400 + std::hash<std::string>{}(
                              std::string(spec.phone) + spec.keyboard) %
                              101;
        eval::ExperimentRunner runner(cfg,
                                      attack::ModelStore::global());
        const eval::AccuracyStats stats =
            runner.runTrials(trials, 8, 14);
        const attack::SignatureModel *active =
            runner.eavesdropper().activeModel();
        const bool right =
            active && active->modelKey() == runner.model().modelKey();
        correctRecognitions += right;
        table.addRow({std::string(spec.phone) + "+" + spec.keyboard,
                      right ? "correct" : "WRONG",
                      Table::pct(stats.textAccuracy()),
                      Table::pct(stats.charAccuracy())});
    }
    table.print();
    std::printf("\nrecognition accuracy: %d/%zu configurations — the "
                "first keyboard redraws identify the configuration "
                "because every (GPU, display, keyboard) combination "
                "has a distinct signature table.\n",
                correctRecognitions, std::size(configs));
    return 0;
}
