/**
 * @file
 * Fault-resilience sweep: per-key accuracy of the hardened sampling
 * pipeline as driver hostility scales, reported as JSON lines on
 * stdout (one object per fault level, replay_throughput style):
 *
 *   {"bench": "fault_resilience", "level": "...",
 *    "collapse_ms": ..., "transient_prob": ..., "wrap32": ...,
 *    "key_accuracy": ..., "text_accuracy": ...,
 *    "transient_retries": ..., "reopens": ..., "rebaselines": ...}
 *
 * The sweep anchors on the fault-free baseline and turns the three
 * continuous fault sources up together (power-collapse rate and
 * transient-error probability; wraparound and one device reset join
 * from "moderate" on), so the series reads as accuracy vs. fault
 * intensity.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "util/logging.h"

using namespace gpusc;
using namespace gpusc::sim_literals;

namespace {

struct Level
{
    const char *name;
    kgsl::FaultPlan plan;
};

std::vector<Level>
levels()
{
    std::vector<Level> out;
    out.push_back({"none", {}});

    kgsl::FaultPlan mild;
    mild.transientErrorProb = 0.02;
    mild.powerCollapseInterval = SimTime::fromMs(8000);
    out.push_back({"mild", mild});

    kgsl::FaultPlan moderate;
    moderate.transientErrorProb = 0.10;
    moderate.powerCollapseInterval = SimTime::fromMs(2000);
    moderate.wrap32 = true;
    moderate.deviceResets = {SimTime::fromMs(5000)};
    out.push_back({"moderate", moderate});

    kgsl::FaultPlan severe;
    severe.transientErrorProb = 0.25;
    severe.powerCollapseInterval = SimTime::fromMs(500);
    severe.wrap32 = true;
    severe.wrap32Offset = 0xFFFFF000ull;
    severe.deviceResets = {SimTime::fromMs(3000),
                           SimTime::fromMs(9000)};
    out.push_back({"severe", severe});

    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const int trials = argc > 1 ? std::atoi(argv[1]) : 10;

    attack::ModelStore store;
    for (const Level &level : levels()) {
        eval::ExperimentConfig cfg;
        cfg.faultPlan = level.plan;
        cfg.seed = 11;
        eval::ExperimentRunner runner(cfg, store);
        const eval::AccuracyStats stats =
            runner.runTrials(trials, 8, 16);
        const attack::HealthStats h = runner.health();
        std::printf(
            "{\"bench\": \"fault_resilience\", "
            "\"level\": \"%s\", "
            "\"collapse_ms\": %lld, "
            "\"transient_prob\": %.2f, "
            "\"wrap32\": %s, "
            "\"device_resets\": %zu, "
            "\"trials\": %d, "
            "\"key_accuracy\": %.4f, "
            "\"text_accuracy\": %.4f, "
            "\"transient_retries\": %llu, "
            "\"reopens\": %llu, "
            "\"rebaselines\": %llu, "
            "\"wraps_repaired\": %llu, "
            "\"missed_reads\": %llu}\n",
            level.name,
            (long long)level.plan.powerCollapseInterval.ms(),
            level.plan.transientErrorProb,
            level.plan.wrap32 ? "true" : "false",
            level.plan.deviceResets.size(), trials,
            stats.charAccuracy(), stats.textAccuracy(),
            (unsigned long long)h.transientRetries,
            (unsigned long long)h.reopens,
            (unsigned long long)h.streamResets,
            (unsigned long long)h.wrapsRepaired,
            (unsigned long long)h.missedReads);
        std::fflush(stdout);
    }
    return 0;
}
