/**
 * @file
 * Figure 26: extra battery consumption of the attack over two hours of
 * continuous background sampling, on four device models.
 */

#include <cstdio>

#include "attack/model_store.h"
#include "attack/trainer.h"
#include "bench_util.h"

using namespace gpusc;
using namespace gpusc::sim_literals;

int
main()
{
    setVerbose(false);
    bench::banner("Figure 26",
                  "extra battery %% over 2 hours of sampling");

    const char *phones[] = {"lgv30", "oneplus8pro", "pixel2",
                            "oneplus7pro"};
    Table table({"device", "30min", "60min", "90min", "120min",
                 "ioctls issued", "exfil bytes"});
    for (const char *phone : phones) {
        android::DeviceConfig cfg;
        cfg.phone = phone;
        const attack::OfflineTrainer trainer;
        const attack::SignatureModel &model =
            attack::ModelStore::global().getOrTrain(cfg, trainer);

        android::Device dev(cfg);
        attack::Eavesdropper spy(dev, model);
        dev.boot();
        spy.start();
        dev.launchTargetApp();

        std::vector<std::string> row{android::phoneSpec(phone)
                                         .marketing};
        for (int q = 0; q < 4; ++q) {
            dev.runFor(30_ms * 60000); // 30 minutes
            row.push_back(
                Table::num(dev.power().extraBatteryPercent()) + "%");
        }
        row.push_back(std::to_string(dev.kgsl().ioctlCount()));
        row.push_back(std::to_string(spy.exfiltrationBytes()));
        table.addRow(std::move(row));
    }
    table.print();
    std::printf("\nPaper: at most ~4%% extra battery after two hours; "
                "older devices with smaller batteries drain "
                "fastest. Network traffic is results-only — a few "
                "bytes per key press, never the raw counter stream "
                "(which would be ~7.9 MB/h at 8 ms sampling).\n");
    return 0;
}
