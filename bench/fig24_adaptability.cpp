/**
 * @file
 * Figure 24: adaptability of the attack — per-configuration models
 * keep accuracy stable across (a) Adreno GPU generations, (b) screen
 * resolutions, (c) phone models sharing a GPU, and (d) Android OS
 * versions.
 *
 * Besides the aligned tables, emits one JSON object on stdout and
 * mirrors it to BENCH_adaptability.json so the adaptability claim
 * has a machine-tracked baseline:
 *
 *   {"bench": "fig24_adaptability", "trials": ...,
 *    "gpu": [{"key": "540/lgv30", "text_acc": ..., "char_acc": ...},
 *            ...],
 *    "resolution": [...], "phone": [...], "os": [...]}
 */

#include <cstdio>

#include "bench_util.h"

using namespace gpusc;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const int trials =
        argc > 1 ? std::atoi(argv[1]) : bench::kTrialsQuick;
    bench::banner("Figure 24", "adaptability across devices and "
                               "configurations (" +
                                   std::to_string(trials) +
                                   " texts per cell)");

    auto cell = [&](eval::ExperimentConfig cfg) {
        return bench::accuracyCell(cfg, trials);
    };

    std::string json = "{\"bench\": \"fig24_adaptability\", "
                       "\"trials\": " +
                       std::to_string(trials) + ", ";
    char buf[160];
    bool firstEntry = true;
    auto jsonSection = [&](const char *name) {
        json += firstEntry ? "" : "], ";
        json += std::string("\"") + name + "\": [";
        firstEntry = true;
    };
    auto jsonEntry = [&](const std::string &key,
                         const eval::AccuracyStats &stats) {
        std::snprintf(buf, sizeof buf,
                      "%s{\"key\": \"%s\", \"text_acc\": %.4f, "
                      "\"char_acc\": %.4f}",
                      firstEntry ? "" : ", ", key.c_str(),
                      stats.textAccuracy(), stats.charAccuracy());
        json += buf;
        firstEntry = false;
    };

    // (a) GPU models.
    Table gpuTable({"Adreno GPU", "phone", "text accuracy",
                    "key-press accuracy"});
    jsonSection("gpu");
    const std::pair<int, const char *> gpus[] = {
        {540, "lgv30"},
        {640, "oneplus7pro"},
        {650, "oneplus8pro"},
        {660, "oneplus9"},
    };
    for (auto [gen, phone] : gpus) {
        eval::ExperimentConfig cfg;
        cfg.device.phone = phone;
        cfg.seed = 2400 + gen;
        const auto stats = cell(cfg);
        gpuTable.addRow({std::to_string(gen), phone,
                         Table::pct(stats.textAccuracy()),
                         Table::pct(stats.charAccuracy())});
        jsonEntry(std::to_string(gen) + "/" + phone, stats);
    }
    gpuTable.print("(a) different GPU models");

    // (b) Screen resolutions (OnePlus 8 Pro supports both).
    Table resTable(
        {"resolution", "text accuracy", "key-press accuracy"});
    jsonSection("resolution");
    for (const char *res : {"FHD+", "QHD+"}) {
        eval::ExperimentConfig cfg;
        cfg.device.resolution = res;
        cfg.seed = 2450 + (res[0] == 'Q');
        const auto stats = cell(cfg);
        resTable.addRow({res, Table::pct(stats.textAccuracy()),
                         Table::pct(stats.charAccuracy())});
        jsonEntry(res, stats);
    }
    resTable.print("\n(b) different screen resolutions");

    // (c) Phone models sharing a GPU.
    Table phoneTable({"phone", "GPU", "text accuracy",
                      "key-press accuracy"});
    jsonSection("phone");
    for (const char *phone : {"lgv30", "pixel2", "oneplus9", "s21"}) {
        eval::ExperimentConfig cfg;
        cfg.device.phone = phone;
        cfg.seed = 2470 + std::hash<std::string>{}(phone) % 31;
        const auto stats = cell(cfg);
        phoneTable.addRow(
            {phone,
             std::to_string(android::phoneSpec(phone).adrenoGen),
             Table::pct(stats.textAccuracy()),
             Table::pct(stats.charAccuracy())});
        jsonEntry(phone, stats);
    }
    phoneTable.print("\n(c) phone models with the same GPU");

    // (d) Android versions (navigation-bar metrics shift the
    // keyboard, so each version has its own model).
    Table osTable(
        {"Android", "text accuracy", "key-press accuracy"});
    jsonSection("os");
    for (int os : {8, 9, 10, 11}) {
        eval::ExperimentConfig cfg;
        cfg.device.osVersion = os;
        cfg.seed = 2490 + os;
        const auto stats = cell(cfg);
        osTable.addRow({std::to_string(os),
                        Table::pct(stats.textAccuracy()),
                        Table::pct(stats.charAccuracy())});
        jsonEntry(std::to_string(os), stats);
    }
    osTable.print("\n(d) different Android OS versions");
    json += "]}";

    std::printf("\nPaper: preloaded per-configuration models keep "
                "accuracy similar across all of these axes.\n\n");
    std::printf("%s\n", json.c_str());
    std::FILE *f = std::fopen("BENCH_adaptability.json", "w");
    if (f) {
        std::fprintf(f, "%s\n", json.c_str());
        std::fclose(f);
    } else {
        warn("fig24_adaptability: cannot write "
             "BENCH_adaptability.json");
    }
    return 0;
}
