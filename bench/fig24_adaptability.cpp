/**
 * @file
 * Figure 24: adaptability of the attack — per-configuration models
 * keep accuracy stable across (a) Adreno GPU generations, (b) screen
 * resolutions, (c) phone models sharing a GPU, and (d) Android OS
 * versions.
 */

#include <cstdio>

#include "bench_util.h"

using namespace gpusc;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const int trials =
        argc > 1 ? std::atoi(argv[1]) : bench::kTrialsQuick;
    bench::banner("Figure 24", "adaptability across devices and "
                               "configurations (" +
                                   std::to_string(trials) +
                                   " texts per cell)");

    auto cell = [&](eval::ExperimentConfig cfg) {
        return bench::accuracyCell(cfg, trials);
    };

    // (a) GPU models.
    Table gpuTable({"Adreno GPU", "phone", "text accuracy",
                    "key-press accuracy"});
    const std::pair<int, const char *> gpus[] = {
        {540, "lgv30"},
        {640, "oneplus7pro"},
        {650, "oneplus8pro"},
        {660, "oneplus9"},
    };
    for (auto [gen, phone] : gpus) {
        eval::ExperimentConfig cfg;
        cfg.device.phone = phone;
        cfg.seed = 2400 + gen;
        const auto stats = cell(cfg);
        gpuTable.addRow({std::to_string(gen), phone,
                         Table::pct(stats.textAccuracy()),
                         Table::pct(stats.charAccuracy())});
    }
    gpuTable.print("(a) different GPU models");

    // (b) Screen resolutions (OnePlus 8 Pro supports both).
    Table resTable(
        {"resolution", "text accuracy", "key-press accuracy"});
    for (const char *res : {"FHD+", "QHD+"}) {
        eval::ExperimentConfig cfg;
        cfg.device.resolution = res;
        cfg.seed = 2450 + (res[0] == 'Q');
        const auto stats = cell(cfg);
        resTable.addRow({res, Table::pct(stats.textAccuracy()),
                         Table::pct(stats.charAccuracy())});
    }
    resTable.print("\n(b) different screen resolutions");

    // (c) Phone models sharing a GPU.
    Table phoneTable({"phone", "GPU", "text accuracy",
                      "key-press accuracy"});
    for (const char *phone : {"lgv30", "pixel2", "oneplus9", "s21"}) {
        eval::ExperimentConfig cfg;
        cfg.device.phone = phone;
        cfg.seed = 2470 + std::hash<std::string>{}(phone) % 31;
        const auto stats = cell(cfg);
        phoneTable.addRow(
            {phone,
             std::to_string(android::phoneSpec(phone).adrenoGen),
             Table::pct(stats.textAccuracy()),
             Table::pct(stats.charAccuracy())});
    }
    phoneTable.print("\n(c) phone models with the same GPU");

    // (d) Android versions (navigation-bar metrics shift the
    // keyboard, so each version has its own model).
    Table osTable(
        {"Android", "text accuracy", "key-press accuracy"});
    for (int os : {8, 9, 10, 11}) {
        eval::ExperimentConfig cfg;
        cfg.device.osVersion = os;
        cfg.seed = 2490 + os;
        const auto stats = cell(cfg);
        osTable.addRow({std::to_string(os),
                        Table::pct(stats.textAccuracy()),
                        Table::pct(stats.charAccuracy())});
    }
    osTable.print("\n(d) different Android OS versions");

    std::printf("\nPaper: preloaded per-configuration models keep "
                "accuracy similar across all of these axes.\n");
    return 0;
}
