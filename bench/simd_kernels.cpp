/**
 * @file
 * Micro-bench of the SIMD kernel layer itself (no pipeline on top):
 * per-call nanoseconds for the panel kernels on the shapes the
 * classifiers actually run — the 40-ish row signature panel at
 * gpu::kNumSelectedCounters dims, plus a larger KNN-style panel —
 * for every backend compiled into this binary. Reports JSON on
 * stdout and mirrors it to BENCH_simd.json:
 *
 *   {"bench": "simd_kernels", "rows": ..., "dims": ...,
 *    "backends": [{"backend": "scalar",
 *                  "argmin_wl2_ns": ..., "argmin_l2_ns": ...,
 *                  "l2sq_to_many_ns": ..., "l2sq_tile_ns_per_row":
 *                  ..., "pair_l2sq_ns": ...}, ...],
 *    "conformant": true}
 *
 * "conformant" cross-checks every backend's argmin winner and
 * distances against the scalar reference over the benched query set
 * (the exhaustive shape sweep lives in
 * tests/simd/kernel_conformance_test.cc; this is the smoke-level
 * repeat so a bench artefact is self-validating).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "simd/kernels.h"
#include "simd/kernels_ref.h"
#include "util/logging.h"
#include "util/rng.h"

using namespace gpusc;

namespace {

constexpr std::uint64_t kSeed = 20260808;

/** The SignatureModel shape: ~40 keys/pages, 11 counters. */
constexpr std::size_t kSigRows = 40;
constexpr std::size_t kSigDims = 11;
/** A KNN-ish panel: hundreds of training points. */
constexpr std::size_t kKnnRows = 384;

std::vector<double>
randomBlock(Rng &rng, std::size_t n, double lo, double hi)
{
    std::vector<double> v(n);
    for (double &x : v)
        x = rng.uniform(lo, hi);
    return v;
}

double
nsPerCall(int iters, const auto &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        fn(i);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           double(iters);
}

struct BackendRow
{
    std::string name;
    double argminWl2Ns = 0.0;
    double argminL2Ns = 0.0;
    double toManyNs = 0.0;
    double tileNsPerRow = 0.0;
    double pairL2Ns = 0.0;
};

} // namespace

int
main()
{
    setVerbose(false);
    Rng rng(kSeed);

    // Panels + query mixes. Queries near the centroids exercise the
    // early-exit pruning the way real classify traffic does.
    const std::vector<double> sigBlock =
        randomBlock(rng, kSigRows * kSigDims, 0.0, 400.0);
    simd::Panel sigPanel;
    sigPanel.packContiguous(sigBlock.data(), kSigRows, kSigDims,
                            kSigDims);
    const std::vector<double> knnBlock =
        randomBlock(rng, kKnnRows * kSigDims, 0.0, 400.0);
    simd::Panel knnPanel;
    knnPanel.packContiguous(knnBlock.data(), kKnnRows, kSigDims,
                            kSigDims);
    const std::vector<double> weights =
        randomBlock(rng, kSigDims, 0.001, 0.01);

    const std::size_t nQueries = 256;
    std::vector<double> queries(nQueries * kSigDims);
    for (std::size_t q = 0; q < nQueries; ++q) {
        const std::size_t row =
            std::size_t(rng.uniformInt(0, std::int64_t(kSigRows) - 1));
        for (std::size_t d = 0; d < kSigDims; ++d)
            queries[q * kSigDims + d] =
                sigBlock[row * kSigDims + d] + rng.uniform(-30.0, 30.0);
    }
    const auto query = [&](int i) {
        return queries.data() +
               (std::size_t(i) % nQueries) * kSigDims;
    };

    const simd::Backend initial = simd::activeBackend();
    std::vector<BackendRow> rows;
    bool conformant = true;

    for (const simd::Backend b :
         {simd::Backend::Scalar, simd::Backend::Avx2,
          simd::Backend::Neon}) {
        if (!simd::backendAvailable(b) || !simd::forceBackend(b))
            continue;
        const simd::Kernels &k = simd::kernels();
        BackendRow row;
        row.name = simd::backendName(b);

        double sink = 0.0;
        row.argminWl2Ns = nsPerCall(400000, [&](int i) {
            sink += double(
                k.argminWL2(query(i), weights.data(), sigPanel).index);
        });
        row.argminL2Ns = nsPerCall(400000, [&](int i) {
            sink += double(k.argminL2(query(i), sigPanel).index);
        });
        std::vector<double> out(kKnnRows);
        row.toManyNs = nsPerCall(100000, [&](int i) {
            k.l2sqToMany(query(i), knnPanel, out.data());
            sink += out[0];
        });
        std::vector<double> tile(nQueries * kKnnRows);
        row.tileNsPerRow = nsPerCall(200, [&](int) {
                               k.l2sqTile(queries.data(), nQueries,
                                          kSigDims, knnPanel,
                                          tile.data(), kKnnRows);
                               sink += tile[0];
                           }) /
                           double(nQueries);
        row.pairL2Ns = nsPerCall(1000000, [&](int i) {
            sink += k.l2sq(query(i), sigBlock.data(), kSigDims);
        });
        if (sink < 0.0) // defeat dead-code elimination
            std::printf("# %f\n", sink);

        // Smoke conformance against the pinned scalar reference.
        for (std::size_t q = 0; q < nQueries; ++q) {
            const double *qp = queries.data() + q * kSigDims;
            const simd::Argmin got =
                k.argminWL2(qp, weights.data(), sigPanel);
            const simd::Argmin want =
                simd::ref::argminWL2(qp, weights.data(), sigPanel);
            if (got.index != want.index ||
                std::memcmp(&got.sq, &want.sq, sizeof got.sq) != 0) {
                warn("simd_kernels: %s argminWL2 diverges from the "
                     "scalar reference at query %zu",
                     row.name.c_str(), q);
                conformant = false;
            }
        }
        rows.push_back(row);
    }
    simd::forceBackend(initial);

    std::string json = "{\"bench\": \"simd_kernels\", ";
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "\"rows\": %zu, \"dims\": %zu, \"knn_rows\": %zu, "
                  "\"backends\": [",
                  kSigRows, kSigDims, kKnnRows);
    json += buf;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const BackendRow &r = rows[i];
        std::snprintf(
            buf, sizeof buf,
            "%s{\"backend\": \"%s\", \"argmin_wl2_ns\": %.1f, "
            "\"argmin_l2_ns\": %.1f, \"l2sq_to_many_ns\": %.1f, "
            "\"l2sq_tile_ns_per_row\": %.1f, \"pair_l2sq_ns\": %.1f}",
            i ? ", " : "", r.name.c_str(), r.argminWl2Ns, r.argminL2Ns,
            r.toManyNs, r.tileNsPerRow, r.pairL2Ns);
        json += buf;
    }
    std::snprintf(buf, sizeof buf, "], \"conformant\": %s}",
                  conformant ? "true" : "false");
    json += buf;

    std::printf("%s\n", json.c_str());
    bench::writeJsonMirror("BENCH_simd.json", json);
    if (!conformant)
        warn("simd_kernels: conformance smoke check failed");
    return conformant ? 0 : 1;
}
