/**
 * @file
 * The attack-vs-defense arena bench: run the kgsl defense grid
 * against the naive and the gracefully-adapting attacker, print the
 * matrix and mirror it (with self-checked invariants) to
 * BENCH_arena.json:
 *
 *   {
 *     "bench": "arena",
 *     "deterministic_across_threads": <cells byte-identical at
 *                                      --threads 1 and 4>,
 *     "monotonic_vs_stock": <stock >= every defended cell,
 *                            per attacker column>,
 *     "robust_beats_naive_rate": <robust key accuracy strictly above
 *                                 naive on the rate-limit row>,
 *     "robust_beats_naive_quant": <same, quantization row>,
 *     "all_defended_cells_report_overhead": <defender cpu_ns > 0
 *                                            everywhere a defense
 *                                            is active>,
 *     "cells": [ {defense, attacker, accuracy, health, overhead} ]
 *   }
 *
 * CI's arena-smoke job gates on the invariant fields; the cells are
 * the measurement. `--quick` shrinks the grid and trial count to
 * sanitiser-friendly size.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arena/matrix.h"
#include "bench_util.h"

using namespace gpusc;

namespace {

const eval::AccuracyStats *
findCell(const std::vector<arena::Cell> &cells,
         const std::string &defensePrefix, const std::string &attacker)
{
    for (const arena::Cell &c : cells)
        if (c.attacker == attacker &&
            c.defense.rfind(defensePrefix, 0) == 0)
            return &c.stats;
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    int trials = 10;
    std::size_t altThreads = 4;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--threads") == 0 &&
                 i + 1 < argc)
            altThreads = std::size_t(std::atoi(argv[++i]));
        else
            trials = std::atoi(argv[i]);
    }
    if (quick)
        trials = std::min(trials, 4);
    bench::banner("arena", "kgsl defenses vs the adapting attacker");

    arena::MatrixConfig mc;
    mc.base.seed = 4100;
    mc.trials = trials;
    mc.minLen = 8;
    mc.maxLen = quick ? 10 : 12;
    if (quick) {
        // Smoke grid: stock + one row per defense family.
        mc.defenses = arena::Matrix::defaultGrid();
        mc.defenses.resize(5); // stock, rate, rate-stale, quant, noise
    }

    // The determinism invariant is measured, not assumed: the same
    // matrix runs serially and sharded, and the serialized cells must
    // be byte-identical.
    mc.threads = 1;
    const std::vector<arena::Cell> cells =
        arena::Matrix(mc).run(attack::ModelStore::global());
    const std::string json1 = arena::Matrix::cellsJson(cells);

    mc.threads = altThreads;
    const std::vector<arena::Cell> cellsMt =
        arena::Matrix(mc).run(attack::ModelStore::global());
    const bool deterministic =
        json1 == arena::Matrix::cellsJson(cellsMt);

    arena::Matrix::printTable(cells);

    // --- Invariant: defenses only degrade the attack (per column).
    bool monotonic = true;
    for (const char *attacker : {"naive", "robust"}) {
        const eval::AccuracyStats *stock =
            findCell(cells, "stock", attacker);
        if (!stock)
            continue;
        for (const arena::Cell &c : cells)
            if (c.attacker == attacker && c.defense != "stock" &&
                c.stats.charAccuracy() >
                    stock->charAccuracy() + 1e-9)
                monotonic = false;
    }

    // --- Invariant: graceful adaptation pays on the degradable rows.
    auto robustWins = [&](const char *prefix) {
        const eval::AccuracyStats *naive =
            findCell(cells, prefix, "naive");
        const eval::AccuracyStats *robust =
            findCell(cells, prefix, "robust");
        return naive && robust &&
               robust->charAccuracy() > naive->charAccuracy();
    };
    const bool beatsRate = robustWins("rate");
    const bool beatsQuant = robustWins("quant");

    // --- Invariant: every defended cell accounts defender cost.
    bool overheadEverywhere = true;
    for (const arena::Cell &c : cells)
        if (c.defense != "stock" && c.overhead.cpuNs == 0)
            overheadEverywhere = false;

    std::printf("\ndeterministic across threads (1 vs %zu): %s\n",
                altThreads, deterministic ? "yes" : "NO");
    std::printf("stock >= defended in every column:        %s\n",
                monotonic ? "yes" : "NO");
    std::printf("robust beats naive on rate-limit row:     %s\n",
                beatsRate ? "yes" : "NO");
    std::printf("robust beats naive on quantization row:   %s\n",
                beatsQuant ? "yes" : "NO");
    std::printf("defender overhead reported in all cells:  %s\n",
                overheadEverywhere ? "yes" : "NO");

    auto jbool = [](bool b) { return b ? "true" : "false"; };
    std::string json = "{\n";
    json += "  \"bench\": \"arena\",\n";
    json += "  \"trials_per_cell\": " + std::to_string(trials) + ",\n";
    json += "  \"threads_checked\": [1, " +
            std::to_string(altThreads) + "],\n";
    json += std::string("  \"deterministic_across_threads\": ") +
            jbool(deterministic) + ",\n";
    json += std::string("  \"monotonic_vs_stock\": ") +
            jbool(monotonic) + ",\n";
    json += std::string("  \"robust_beats_naive_rate\": ") +
            jbool(beatsRate) + ",\n";
    json += std::string("  \"robust_beats_naive_quant\": ") +
            jbool(beatsQuant) + ",\n";
    json +=
        std::string("  \"all_defended_cells_report_overhead\": ") +
        jbool(overheadEverywhere) + ",\n";
    json += "  \"cells\": " + arena::Matrix::cellsJson(cells) + "\n";
    json += "}";
    bench::writeJsonMirror("BENCH_arena.json", json);
    std::printf("\nwrote BENCH_arena.json (%zu cells)\n",
                cells.size());

    return 0;
}
