/**
 * @file
 * Figure 16: key-press durations and inter-press intervals of the five
 * volunteers — the human-timing model used to emulate key presses in
 * every accuracy experiment.
 */

#include <cstdio>

#include "bench_util.h"
#include "util/stats.h"
#include "workload/typing_model.h"

using namespace gpusc;

int
main()
{
    setVerbose(false);
    bench::banner("Figure 16",
                  "durations and intervals of key presses per "
                  "volunteer (50 strings of length 8-16 each)");

    Table table({"volunteer", "duration mean", "duration sd",
                 "interval mean", "interval sd", "interval p10-p90"});
    Samples pooled;
    for (std::size_t v = 0; v < workload::volunteerProfiles().size();
         ++v) {
        workload::TypingModel model =
            workload::TypingModel::forVolunteer(v, 100 + v);
        Samples durations, intervals;
        // 50 strings x ~12 keys, as in the paper's collection.
        for (int i = 0; i < 50 * 12; ++i) {
            durations.add(model.nextDuration().seconds());
            const double interval = model.nextInterval().seconds();
            intervals.add(interval);
            pooled.add(interval);
        }
        table.addRow(
            {model.profile().name,
             Table::num(durations.mean() * 1e3, 0) + "ms",
             Table::num(durations.stddev() * 1e3, 0) + "ms",
             Table::num(intervals.mean() * 1e3, 0) + "ms",
             Table::num(intervals.stddev() * 1e3, 0) + "ms",
             Table::num(intervals.quantile(0.1), 2) + "s-" +
                 Table::num(intervals.quantile(0.9), 2) + "s"});
    }
    table.print();

    // The tercile boundaries used by the Fig. 21 speed split.
    int fast = 0, medium = 0, slow = 0;
    for (double s : pooled.values()) {
        if (s < workload::kFastMaxIntervalS)
            ++fast;
        else if (s <= workload::kSlowMinIntervalS)
            ++medium;
        else
            ++slow;
    }
    const double n = double(pooled.count());
    std::printf("pooled split: fast %.1f%% | medium %.1f%% | slow "
                "%.1f%% (paper splits the pool into equal terciles at "
                "0.24s and 0.4s)\n",
                100.0 * fast / n, 100.0 * medium / n,
                100.0 * slow / n);
    return 0;
}
