/**
 * @file
 * Streaming ingest service benchmark (src/stream/). Three segments,
 * reported as JSON on stdout and mirrored to BENCH_stream.json:
 *
 *  - capacity: fan one recorded reading stream out to >= 1000
 *    concurrent sessions under the default memory budget; reports
 *    sessions held, accounted memory, and ingest throughput
 *    (readings/s through the full inference pipeline).
 *  - shed: the same stream against a tiny ring under the shed-oldest
 *    policy with a deliberately lazy pump; reports the shed rate and
 *    re-checks the audit funnel identity over the aggregate.
 *  - drift: accuracy-over-time under rendering-cost drift. Every
 *    non-idle reading delta gains an additive offset that ramps from
 *    0 to drift_max_cth x C_th in the model's own scaled-distance
 *    units (idle readings stay idle, so change detection is
 *    unaffected — only classification distances grow). The same
 *    drifted stream is ingested twice — once with online template
 *    adaptation, once with the model frozen — and per-window
 *    key-press accuracy gives the two curves. Adaptation tracks the
 *    ramp; the frozen model decays to zero once the drift passes
 *    C_th.
 *
 *   {"bench": "stream_throughput",
 *    "capacity": {"sessions": ..., "sessions_held": ...,
 *                 "memory_bytes": ..., "memory_budget_bytes": ...,
 *                 "readings": ..., "seconds": ...,
 *                 "readings_per_sec": ...},
 *    "shed": {"offered": ..., "shed": ..., "shed_rate": ...,
 *             "funnel_ok": true},
 *    "drift": {"trials": ..., "window": ..., "drift_max_cth": ...,
 *              "adaptive": {"curve": [...], "updates": ...,
 *                           "mean_late_acc": ...},
 *              "frozen": {"curve": [...], "mean_late_acc": ...},
 *              "adaptation_wins": true}}
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "attack/model_store.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "exec/thread_pool.h"
#include "stream/ingest_service.h"
#include "trace/trace_reader.h"
#include "util/logging.h"

using namespace gpusc;

namespace {

constexpr std::uint64_t kSeed = 20260808;

/** One ground-truth credential window of the recorded stream. */
struct TrialWindow
{
    std::string truth;
    SimTime begin;
    SimTime end;
};

struct RecordedStream
{
    std::vector<attack::Reading> readings;
    std::vector<TrialWindow> trials;
};

/**
 * Record @p trials credential trials once and decode the reading
 * stream + trial boundaries. Lowercase-only credentials keep the
 * label space small, so under drift every template sees updates at a
 * steady cadence. The model is trained into the global store as a
 * side effect; later segments reuse it.
 */
RecordedStream
recordStream(int trials, const std::string &path)
{
    eval::ExperimentConfig cfg;
    cfg.seed = kSeed;
    cfg.recordTracePath = path;
    cfg.charset = workload::CharsetMix::lowerOnly();
    {
        eval::ExperimentRunner runner(cfg,
                                      attack::ModelStore::global());
        runner.runTrials(trials, 8, 12);
        if (runner.finishRecording() != trace::TraceError::None)
            fatal("stream_throughput: trace recording failed");
    }

    RecordedStream out;
    trace::TraceReader reader;
    if (reader.open(path) != trace::TraceError::None)
        fatal("stream_throughput: cannot reopen %s", path.c_str());
    trace::TraceRecord rec;
    bool eof = false;
    TrialWindow open;
    bool inTrial = false;
    while (reader.next(rec, eof) == trace::TraceError::None && !eof) {
        switch (rec.kind) {
          case trace::RecordKind::Reading:
            out.readings.push_back(rec.reading);
            break;
          case trace::RecordKind::TrialBegin:
            open = TrialWindow{rec.text, rec.time, rec.time};
            inTrial = true;
            break;
          case trace::RecordKind::TrialEnd:
            if (inTrial) {
                open.end = rec.time;
                out.trials.push_back(open);
                inTrial = false;
            }
            break;
          default:
            break;
        }
    }
    return out;
}

/**
 * Add a rendering-cost drift to the stream: every reading whose
 * delta is non-zero gains an additive per-counter offset that ramps
 * linearly from 0 to @p maxDistance in @p model's scaled-distance
 * units (spread evenly across the counters the model weighs).
 * Idle readings are untouched, so the change detector sees the same
 * change sequence — only classification distances drift. Offsets are
 * rounded per counter; with the trained scales (~1e-2) the rounding
 * error stays well under 0.1 x C_th.
 */
std::vector<attack::Reading>
applyDrift(const std::vector<attack::Reading> &in,
           const attack::SignatureModel &model, double maxDistance)
{
    const auto &scale = model.scale();
    std::size_t active = 0;
    for (double s : scale)
        active += s > 0.0;
    if (!active)
        fatal("stream_throughput: model has no scaled counters");

    std::vector<attack::Reading> out;
    out.reserve(in.size());
    gpu::CounterTotals acc{};
    const std::size_t n = in.size();
    for (std::size_t i = 0; i < n; ++i) {
        const double ramp =
            n > 1 ? double(i) / double(n - 1) : 0.0;
        // Offset with scaled-space norm ramp*maxDistance, split
        // evenly over the active counters.
        const double perDim =
            ramp * maxDistance / std::sqrt(double(active));
        attack::Reading r = in[i];
        bool idle = true;
        for (std::size_t c = 0; c < r.totals.size(); ++c) {
            const std::uint64_t prev = i ? in[i - 1].totals[c] : 0;
            if (r.totals[c] != prev)
                idle = false;
        }
        for (std::size_t c = 0; c < r.totals.size(); ++c) {
            const std::uint64_t prev = i ? in[i - 1].totals[c] : 0;
            std::uint64_t delta = r.totals[c] - prev;
            if (!idle && scale[c] > 0.0)
                delta += std::uint64_t(
                    std::llround(perDim / scale[c]));
            acc[c] += delta;
            r.totals[c] = acc[c];
        }
        out.push_back(r);
    }
    return out;
}

/**
 * Ingest @p readings into one session and score each trial window's
 * per-key accuracy into @p window-sized buckets.
 * @return per-window key-press accuracy; template updates applied
 * via @p updatesOut.
 */
std::vector<double>
driftCurve(const std::vector<attack::Reading> &readings,
           const std::vector<TrialWindow> &trials, bool adapt,
           std::size_t window, std::uint64_t *updatesOut)
{
    stream::IngestService::Params params;
    params.backpressure = stream::IngestService::Backpressure::Block;
    params.sessions.session.adaptation = adapt;
    // Track the ramp aggressively: snap templates onto each accepted
    // observation, gated only for matches already near the threshold.
    params.sessions.session.adaptationParams.blend = 1.0;
    params.sessions.session.adaptationParams.confidenceMargin = 0.95;
    // The echo-channel correction heuristic fits a fixed per-length
    // line and cannot adapt; disable it for both curves so the
    // comparison isolates template adaptation.
    params.sessions.session.eavesdropper.correctionTracking = false;

    const attack::SignatureModel &base =
        attack::ModelStore::global().getOrTrain(
            android::DeviceConfig{}, attack::OfflineTrainer{});
    stream::IngestService svc(base, params);

    std::vector<eval::AccuracyStats> buckets(
        (trials.size() + window - 1) / window);
    std::size_t next = 0; // next reading to offer
    for (std::size_t t = 0; t < trials.size(); ++t) {
        while (next < readings.size() &&
               readings[next].time <= trials[t].end) {
            svc.offer(0, readings[next]);
            ++next;
        }
        svc.pump();
        const stream::Session *s = svc.sessions().find(0);
        const std::string inferred =
            s->eavesdropper().inferredTextBetween(trials[t].begin,
                                                  trials[t].end);
        buckets[t / window].add(trials[t].truth, inferred);
    }
    if (updatesOut) {
        const stream::Session *s = svc.sessions().find(0);
        *updatesOut =
            s->updater() ? s->updater()->updatesApplied() : 0;
    }
    std::vector<double> curve;
    for (const eval::AccuracyStats &b : buckets)
        curve.push_back(b.charAccuracy());
    return curve;
}

double
meanLateAccuracy(const std::vector<double> &curve)
{
    const std::size_t from = curve.size() / 2;
    double sum = 0.0;
    for (std::size_t i = from; i < curve.size(); ++i)
        sum += curve[i];
    return curve.size() > from ? sum / double(curve.size() - from)
                               : 0.0;
}

std::string
curveJson(const std::vector<double> &curve)
{
    std::string out = "[";
    char buf[32];
    for (std::size_t i = 0; i < curve.size(); ++i) {
        std::snprintf(buf, sizeof buf, "%s%.4f", i ? ", " : "",
                      curve[i]);
        out += buf;
    }
    return out + "]";
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    // Quick mode (CI): fewer trials, smaller fleet. Full mode covers
    // the >=1000-session acceptance bar.
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    const int driftTrials = quick ? 24 : 48;
    const std::size_t fleet = quick ? 128 : 1200;
    const std::size_t window = quick ? 4 : 6;
    /** Total drift, in C_th units: 3x the acceptance threshold is
     *  far beyond what a frozen model survives. */
    const double driftMaxCth = 3.0;

    const std::string tracePath = "stream_throughput_tmp.gpct";
    const RecordedStream stream =
        recordStream(driftTrials, tracePath);
    std::remove(tracePath.c_str());
    if (stream.readings.empty() || stream.trials.empty())
        fatal("stream_throughput: empty recorded stream");

    const attack::SignatureModel &base =
        attack::ModelStore::global().getOrTrain(
            android::DeviceConfig{}, attack::OfflineTrainer{});
    char buf[512];
    std::string json = "{\"bench\": \"stream_throughput\", ";

    // --- capacity: fan out to `fleet` concurrent sessions. ---
    {
        stream::IngestService::Params params;
        params.backpressure =
            stream::IngestService::Backpressure::Block;
        // Capacity measures pipeline traffic, not adaptation.
        params.sessions.session.adaptation = false;
        stream::IngestService svc(base, params);
        exec::ThreadPool pool(8);

        // Bound per-session traffic so the segment measures breadth
        // (many sessions), not depth.
        const std::size_t perSession =
            std::min<std::size_t>(stream.readings.size(), 512);
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < perSession; ++i) {
            for (stream::SessionId sid = 0; sid < fleet; ++sid)
                svc.offer(sid, stream.readings[i]);
            if (i % 64 == 63)
                svc.pump(pool);
        }
        svc.pump(pool);
        const auto t1 = std::chrono::steady_clock::now();
        const double secs =
            std::chrono::duration<double>(t1 - t0).count();
        std::snprintf(
            buf, sizeof buf,
            "\"capacity\": {\"sessions\": %zu, "
            "\"sessions_held\": %zu, \"evicted\": %llu, "
            "\"memory_bytes\": %zu, \"memory_budget_bytes\": %zu, "
            "\"readings\": %llu, \"seconds\": %.3f, "
            "\"readings_per_sec\": %.0f}, ",
            fleet, svc.sessions().size(),
            (unsigned long long)svc.sessions().sessionsEvicted(),
            svc.sessions().memoryUseBytes(),
            svc.sessions().params().memoryBudgetBytes,
            (unsigned long long)svc.readingsOffered(), secs,
            secs > 0 ? double(svc.readingsOffered()) / secs : 0.0);
        json += buf;
    }

    // --- shed: tiny ring, lazy pump, shed-oldest. ---
    {
        stream::IngestService::Params params;
        params.backpressure =
            stream::IngestService::Backpressure::ShedOldest;
        params.sessions.session.ringCapacity = 32;
        params.sessions.session.adaptation = false;
        stream::IngestService svc(base, params);
        std::size_t sincePump = 0;
        for (const attack::Reading &r : stream.readings) {
            svc.offer(0, r);
            if (++sincePump == 256) { // ring is 32: forced sheds
                svc.pump();
                sincePump = 0;
            }
        }
        svc.pump();
        obs::Telemetry agg;
        svc.aggregateTelemetry(agg);
        const std::uint64_t parts =
            agg.audit.count(obs::Decision::AcceptedKey) +
            agg.audit.count(obs::Decision::SplitRepaired) +
            agg.audit.count(obs::Decision::DuplicationDrop) +
            agg.audit.count(obs::Decision::NoiseRejected) +
            agg.audit.count(obs::Decision::SuppressedAppSwitch);
        const bool funnelOk =
            agg.audit.changesAudited() == parts &&
            agg.audit.count(obs::Decision::ShedOldestDrop) ==
                svc.readingsShedOldest();
        std::snprintf(
            buf, sizeof buf,
            "\"shed\": {\"offered\": %llu, \"shed\": %llu, "
            "\"shed_rate\": %.4f, \"funnel_ok\": %s}, ",
            (unsigned long long)svc.readingsOffered(),
            (unsigned long long)svc.readingsShedOldest(),
            svc.readingsOffered()
                ? double(svc.readingsShedOldest()) /
                      double(svc.readingsOffered())
                : 0.0,
            funnelOk ? "true" : "false");
        json += buf;
    }

    // --- drift: adaptation vs frozen model on the same stream. ---
    {
        const std::vector<attack::Reading> drifted = applyDrift(
            stream.readings, base, driftMaxCth * base.threshold());
        std::uint64_t updates = 0;
        const std::vector<double> adaptive = driftCurve(
            drifted, stream.trials, true, window, &updates);
        const std::vector<double> frozen = driftCurve(
            drifted, stream.trials, false, window, nullptr);
        const double lateAdaptive = meanLateAccuracy(adaptive);
        const double lateFrozen = meanLateAccuracy(frozen);
        std::snprintf(
            buf, sizeof buf,
            "\"drift\": {\"trials\": %zu, \"window\": %zu, "
            "\"drift_max_cth\": %.2f, "
            "\"adaptive\": {\"curve\": %s, \"updates\": %llu, "
            "\"mean_late_acc\": %.4f}, ",
            stream.trials.size(), window, driftMaxCth,
            curveJson(adaptive).c_str(), (unsigned long long)updates,
            lateAdaptive);
        json += buf;
        std::snprintf(
            buf, sizeof buf,
            "\"frozen\": {\"curve\": %s, \"mean_late_acc\": %.4f}, "
            "\"adaptation_wins\": %s}}",
            curveJson(frozen).c_str(), lateFrozen,
            lateAdaptive > lateFrozen ? "true" : "false");
        json += buf;
    }

    std::printf("%s\n", json.c_str());
    std::FILE *f = std::fopen("BENCH_stream.json", "w");
    if (f) {
        std::fprintf(f, "%s\n", json.c_str());
        std::fclose(f);
    } else {
        warn("stream_throughput: cannot write BENCH_stream.json");
    }
    return 0;
}
