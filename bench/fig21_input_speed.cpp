/**
 * @file
 * Figure 21: impact of the user's typing speed — the pooled volunteer
 * intervals split into fast (<0.24 s), medium (0.24-0.4 s) and slow
 * (>0.4 s) terciles. Slow typing exposes more opportunities for
 * random system noise (cursor blinks resume between presses), which
 * lowers the exact-text accuracy while per-key accuracy stays high.
 */

#include <cstdio>

#include "bench_util.h"

using namespace gpusc;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const int trials =
        argc > 1 ? std::atoi(argv[1]) : bench::kTrialsFull;
    bench::banner("Figure 21", "accuracy vs typing speed (" +
                                   std::to_string(trials) +
                                   " texts per band)");

    struct Band
    {
        const char *name;
        workload::TypingSpeed speed;
    };
    const Band bands[] = {
        {"slow", workload::TypingSpeed::Slow},
        {"medium", workload::TypingSpeed::Medium},
        {"fast", workload::TypingSpeed::Fast},
        {"overall", workload::TypingSpeed::Mixed},
    };

    Table table({"speed", "text accuracy", "key-press accuracy",
                 "avg wrong keys/text"});
    Table groupTable({"speed", "lower", "upper", "number", "symbol"});
    for (const Band &band : bands) {
        eval::ExperimentConfig cfg;
        cfg.speed = band.speed;
        cfg.seed = 2100 + int(band.speed);
        eval::ExperimentRunner runner(cfg,
                                      attack::ModelStore::global());
        const eval::AccuracyStats stats =
            runner.runTrials(trials, 8, 16);
        table.addRow({band.name, Table::pct(stats.textAccuracy()),
                      Table::pct(stats.charAccuracy()),
                      Table::num(stats.avgErrorsPerText())});
        groupTable.addRow(
            {band.name,
             Table::pct(stats.groupAccuracy(workload::CharGroup::Lower)),
             Table::pct(stats.groupAccuracy(workload::CharGroup::Upper)),
             Table::pct(
                 stats.groupAccuracy(workload::CharGroup::Number)),
             Table::pct(
                 stats.groupAccuracy(workload::CharGroup::Symbol))});
    }
    table.print("(a)+(b) accuracy and error counts per speed band");
    groupTable.print("\n(c) per-group accuracy per speed band");
    std::printf("\nPaper: text accuracy drops toward 60%% for slow "
                "typing while per-key accuracy stays ~constant; "
                "errors stay below ~1.3 per text.\n");
    return 0;
}
