/**
 * @file
 * Ablation: contribution of each online-phase component (beyond the
 * paper's own sweeps). Disables, one at a time: the T_min duplication
 * filter, Algorithm 1's split repair, app-switch suppression, and
 * correction tracking — on a workload with typos so corrections
 * matter.
 */

#include <cstdio>

#include "bench_util.h"

using namespace gpusc;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const int trials =
        argc > 1 ? std::atoi(argv[1]) : bench::kTrialsQuick;
    bench::banner("Ablation (online phase)",
                  "per-component contribution, " +
                      std::to_string(trials) +
                      " texts per row, 8% typo rate");

    struct Variant
    {
        const char *name;
        bool dupFilter;
        bool splitRepair;
        bool appSwitch;
        bool corrections;
    };
    const Variant variants[] = {
        {"full attack", true, true, true, true},
        {"no duplication filter", false, true, true, true},
        {"no split repair", true, false, true, true},
        {"no app-switch detection", true, true, false, true},
        {"no correction tracking", true, true, true, false},
    };

    Table table({"variant", "text accuracy", "key-press accuracy",
                 "avg wrong keys/text"});
    for (const Variant &v : variants) {
        eval::ExperimentConfig cfg;
        cfg.typoProb = 0.08;
        cfg.seed = 3100;
        cfg.attackParams.appSwitchDetection = v.appSwitch;
        cfg.attackParams.correctionTracking = v.corrections;
        eval::ExperimentRunner runner(cfg,
                                      attack::ModelStore::global());
        // Toggle Algorithm-1 internals on the live pipeline.
        auto *inference = const_cast<attack::OnlineInference *>(
            runner.eavesdropper().inference());
        inference->setDuplicationFilterEnabled(v.dupFilter);
        inference->setSplitRepairEnabled(v.splitRepair);
        const eval::AccuracyStats stats =
            runner.runTrials(trials, 8, 16);
        table.addRow({v.name, Table::pct(stats.textAccuracy()),
                      Table::pct(stats.charAccuracy()),
                      Table::num(stats.avgErrorsPerText())});
    }
    table.print();
    std::printf("\nExpected: dropping the duplication filter inserts "
                "phantom repeats; dropping split repair loses keys "
                "whose change a read bisected; dropping correction "
                "tracking keeps deleted characters in the output.\n");
    return 0;
}
