/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Each bench binary regenerates one table or figure of the paper's
 * evaluation as an aligned text table, using the same experiment
 * pipeline (offline training -> victim session -> typed credentials ->
 * eavesdropping -> scoring). Models are cached process-wide so a bench
 * that sweeps many device configurations trains each one exactly once.
 */

#ifndef GPUSC_BENCH_BENCH_UTIL_H
#define GPUSC_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>

#include "attack/model_store.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "util/logging.h"
#include "util/table.h"

namespace gpusc::bench {

/** Default trial counts (paper: 300 texts per configuration). */
inline constexpr int kTrialsFull = 300;
inline constexpr int kTrialsQuick = 120;

/** Run one accuracy cell: n random credentials of length 8-16. */
inline eval::AccuracyStats
accuracyCell(const eval::ExperimentConfig &cfg, int trials,
             std::size_t minLen = 8, std::size_t maxLen = 16)
{
    eval::ExperimentRunner runner(cfg, attack::ModelStore::global());
    return runner.runTrials(trials, minLen, maxLen);
}

/** Print the standard bench banner. */
inline void
banner(const std::string &id, const std::string &what)
{
    std::printf("=== %s: %s ===\n", id.c_str(), what.c_str());
    std::fflush(stdout);
}

/**
 * Mirror a bench's machine-readable output to a BENCH_*.json file
 * next to the working directory (the CI artefact convention).
 * @return true when the file was written.
 */
inline bool
writeJsonMirror(const std::string &path, const std::string &json)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("bench: cannot write %s", path.c_str());
        return false;
    }
    std::fputs(json.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
}

} // namespace gpusc::bench

#endif // GPUSC_BENCH_BENCH_UTIL_H
