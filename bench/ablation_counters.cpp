/**
 * @file
 * Ablation: which counter groups carry the signal? Reclassifies with
 * only the LRZ, only the RAS, or only the VPC group enabled (masking
 * the other dimensions out of the trained model's metric), versus all
 * 11 selected counters.
 */

#include <cstdio>

#include "bench_util.h"
#include "gpu/counters.h"

using namespace gpusc;

namespace {

attack::SignatureModel
maskModel(const attack::SignatureModel &model, gpu::CounterGroup keep)
{
    attack::SignatureModel out = model;
    auto scale = model.scale();
    for (std::size_t d = 0; d < gpu::kNumSelectedCounters; ++d) {
        const gpu::CounterId id =
            gpu::counterId(gpu::SelectedCounter(d));
        if (id.group != std::uint32_t(keep))
            scale[d] = 0.0;
    }
    out.setScale(scale);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const int trials =
        argc > 1 ? std::atoi(argv[1]) : bench::kTrialsQuick;
    bench::banner("Ablation (counter groups)",
                  "classification with counter subsets, " +
                      std::to_string(trials) + " texts per row");

    struct Variant
    {
        const char *name;
        std::optional<gpu::CounterGroup> keep;
    };
    const Variant variants[] = {
        {"all 11 counters", std::nullopt},
        {"LRZ group only", gpu::CounterGroup::LRZ},
        {"RAS group only", gpu::CounterGroup::RAS},
        {"VPC group only", gpu::CounterGroup::VPC},
    };

    Table table({"counters", "text accuracy", "key-press accuracy"});
    for (const Variant &v : variants) {
        eval::ExperimentConfig cfg;
        cfg.seed = 3200;
        if (v.keep) {
            const gpu::CounterGroup keep = *v.keep;
            cfg.modelTransform =
                [keep](const attack::SignatureModel &m) {
                    return maskModel(m, keep);
                };
        }
        const eval::AccuracyStats stats =
            bench::accuracyCell(cfg, trials);
        table.addRow({v.name, Table::pct(stats.textAccuracy()),
                      Table::pct(stats.charAccuracy())});
    }
    table.print();
    std::printf("\nAll three groups observe the popup overdraw; the "
                "combination is what separates near-identical "
                "keys.\n");
    return 0;
}
