/**
 * @file
 * Ablation: the classification threshold C_th (paper §5.1 sets it to
 * eliminate false positives). Sweeping a multiplier on the trained
 * threshold shows the false-positive/false-negative trade-off.
 */

#include <cstdio>

#include "bench_util.h"

using namespace gpusc;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const int trials =
        argc > 1 ? std::atoi(argv[1]) : bench::kTrialsQuick;
    bench::banner("Ablation (threshold C_th)",
                  "accuracy vs threshold multiplier, " +
                      std::to_string(trials) + " texts per row");

    Table table({"C_th multiplier", "text accuracy",
                 "key-press accuracy", "avg wrong keys/text"});
    for (double mult : {0.05, 0.25, 1.0, 4.0, 20.0, 100.0}) {
        eval::ExperimentConfig cfg;
        cfg.seed = 3300;
        cfg.modelTransform =
            [mult](const attack::SignatureModel &m) {
                attack::SignatureModel out = m;
                out.setThreshold(m.threshold() * mult);
                return out;
            };
        const eval::AccuracyStats stats =
            bench::accuracyCell(cfg, trials);
        table.addRow({Table::num(mult), Table::pct(stats.textAccuracy()),
                      Table::pct(stats.charAccuracy()),
                      Table::num(stats.avgErrorsPerText())});
    }
    table.print();
    std::printf("\nToo small: split-repaired and noise-perturbed "
                "presses are rejected (misses). Too large: noise and "
                "partial frames classify as keys (false "
                "positives).\n");
    return 0;
}
