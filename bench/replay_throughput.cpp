/**
 * @file
 * Micro-benchmark for the trace replay path: synthesizes a large
 * .gpct trace, replays it through the detached inference pipeline and
 * reports throughput as JSON on stdout:
 *
 *   {"bench": "replay_throughput", "readings": ..., "seconds": ...,
 *    "readings_per_sec": ...}
 *
 * Replay throughput bounds how fast recorded corpora can be re-scored
 * after a model/pipeline change; at the paper's 8 ms sampling
 * interval, 1M readings/sec replays ~2.2 hours of capture per second.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "trace/trace_replayer.h"
#include "trace/trace_writer.h"
#include "util/logging.h"

using namespace gpusc;

namespace {

/** A minimal but non-trivial model so replay exercises the real
 *  classify path on every detected change. */
attack::SignatureModel
benchModel()
{
    attack::SignatureModel m;
    m.setModelKey("bench/synthetic");
    std::array<double, gpu::kNumSelectedCounters> scale{};
    scale.fill(1.0 / 1000.0);
    m.setScale(scale);
    for (char ch : {'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'}) {
        attack::LabelSignature sig;
        sig.label = attack::Label(1, ch);
        for (std::size_t d = 0; d < sig.centroid.size(); ++d)
            sig.centroid[d] = 8000 + 512 * (ch - 'a') + 31 * long(d);
        m.addSignature(sig);
    }
    m.setThreshold(3.0);
    return m;
}

/** Write @p n readings; every 16th simulates a keypress redraw. */
std::string
synthesizeTrace(std::uint64_t n)
{
    const std::string path = "/tmp/gpusc_replay_bench.gpct";
    trace::TraceHeader header;
    header.deviceKey = "bench/synthetic";
    header.seed = 7;

    trace::TraceWriter w;
    if (w.open(path, header) != trace::TraceError::None)
        fatal("cannot create %s", path.c_str());
    attack::Reading r;
    gpu::CounterTotals totals{};
    for (std::uint64_t i = 0; i < n; ++i) {
        r.time = SimTime::fromMs(std::int64_t(8 * i));
        if (i % 16 == 15) {
            const int key = int(i / 16) % 8;
            for (std::size_t d = 0; d < totals.size(); ++d)
                totals[d] +=
                    std::uint64_t(8000 + 512 * key + 31 * int(d));
        }
        r.totals = totals;
        if (w.writeReading(r) != trace::TraceError::None)
            fatal("write failed");
    }
    if (w.close() != trace::TraceError::None)
        fatal("close failed");
    return path;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const std::uint64_t readings =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;

    const std::string path = synthesizeTrace(readings);
    const attack::SignatureModel model = benchModel();

    // Warm-up pass (page cache + allocator), then the timed pass.
    trace::TraceReplayer replayer(model);
    if (replayer.replayFile(path) != trace::TraceError::None)
        fatal("warm-up replay failed");

    const auto t0 = std::chrono::steady_clock::now();
    if (replayer.replayFile(path) != trace::TraceError::None)
        fatal("replay failed");
    const auto t1 = std::chrono::steady_clock::now();

    const double seconds =
        std::chrono::duration<double>(t1 - t0).count();
    std::printf("{\"bench\": \"replay_throughput\", "
                "\"readings\": %llu, "
                "\"events\": %zu, "
                "\"seconds\": %.6f, "
                "\"readings_per_sec\": %.0f}\n",
                (unsigned long long)replayer.readingsReplayed(),
                replayer.eavesdropper().events().size(), seconds,
                seconds > 0 ? double(readings) / seconds : 0.0);
    std::remove(path.c_str());
    return 0;
}
