/**
 * @file
 * Figure 17: accuracy of inferring user's text inputs on the Chase
 * app (OnePlus 8 Pro, Gboard) — (a) exact-text accuracy per credential
 * length 8-16, (b) average number of incorrectly inferred key presses
 * per text, (c) accuracy per character group.
 */

#include <cstdio>

#include "bench_util.h"

using namespace gpusc;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const int trials = argc > 1 ? std::atoi(argv[1])
                                : bench::kTrialsFull;
    bench::banner("Figure 17",
                  "credential-inference accuracy vs input length "
                  "(Chase, OnePlus 8 Pro, Gboard; " +
                      std::to_string(trials) + " texts per length)");

    Table perLength({"length", "text accuracy", "char accuracy",
                     "avg wrong keys/text"});
    eval::AccuracyStats overall;
    eval::AccuracyStats groups;
    for (std::size_t len = 8; len <= 16; ++len) {
        eval::ExperimentConfig cfg;
        cfg.device.app = "chase";
        cfg.seed = 1000 + len;
        eval::ExperimentRunner runner(cfg,
                                      attack::ModelStore::global());
        std::vector<eval::TrialResult> trialsOut;
        const eval::AccuracyStats stats =
            runner.runTrials(trials, len, len, &trialsOut);
        for (const auto &t : trialsOut) {
            overall.add(t.truth, t.inferred);
            groups.add(t.truth, t.inferred);
        }
        perLength.addRow({std::to_string(len),
                          Table::pct(stats.textAccuracy()),
                          Table::pct(stats.charAccuracy()),
                          Table::num(stats.avgErrorsPerText())});
    }
    perLength.addRow({"all", Table::pct(overall.textAccuracy()),
                      Table::pct(overall.charAccuracy()),
                      Table::num(overall.avgErrorsPerText())});
    perLength.print("(a)+(b) accuracy and errors per input length");

    Table groupTable({"character group", "accuracy", "samples"});
    for (auto g :
         {workload::CharGroup::Lower, workload::CharGroup::Upper,
          workload::CharGroup::Number, workload::CharGroup::Symbol}) {
        groupTable.addRow({workload::charGroupName(g),
                           Table::pct(groups.groupAccuracy(g)),
                           std::to_string(groups.groupTotal(g))});
    }
    groupTable.print("\n(c) accuracy per character group");

    std::printf("\nPaper: text accuracy always >75%% (avg 81.3%%); "
                "individual key presses 98.3%%; symbols weakest.\n");
    return 0;
}
