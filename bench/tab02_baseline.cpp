/**
 * @file
 * Table 2: eavesdropping accuracy of the prior-work baseline [37]
 * (workload-level counters of a desktop Nvidia GPU, sampled via
 * CUPTI) with Naive Bayes, KNN3 and Random Forest, on gedit, the
 * Gmail login page in Chrome, and the Dropbox client.
 *
 * The baseline collapses because frame-aggregate counters carry the
 * whole window's workload; one glyph's pixels are noise-level.
 */

#include <cstdio>
#include <memory>

#include "baseline/desktop_baseline.h"
#include "bench_util.h"
#include "ml/knn.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"

using namespace gpusc;

int
main()
{
    setVerbose(false);
    bench::banner("Table 2",
                  "prior-work baseline [37]: desktop workload-level "
                  "GPU counters + classic classifiers");

    Table table({"classifier", "gedit", "Gmail web", "Dropbox client"});

    auto evalApp = [&](ml::Classifier &clf,
                       const baseline::DesktopAppSpec &app) {
        baseline::DesktopGpuBaseline gen(1234);
        const ml::Dataset train = gen.collect(app, 40);
        const ml::Dataset test = gen.collect(app, 10);
        clf.fit(train);
        return clf.accuracy(test);
    };

    const auto &apps = baseline::desktopApps();
    std::vector<std::unique_ptr<ml::Classifier>> classifiers;
    classifiers.push_back(std::make_unique<ml::GaussianNaiveBayes>());
    classifiers.push_back(std::make_unique<ml::Knn>(3));
    classifiers.push_back(std::make_unique<ml::RandomForest>());

    for (auto &clf : classifiers) {
        std::vector<std::string> row{clf->name()};
        for (const auto &app : apps)
            row.push_back(Table::pct(evalApp(*clf, app)));
        table.addRow(std::move(row));
    }
    table.print();
    std::printf("\nPaper Table 2: all cells below 14%% (chance for 26 "
                "keys is 3.8%%) — coarse counters cannot see single "
                "keystrokes.\n");
    return 0;
}
