/**
 * @file
 * Figure 13: PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ change bursts when the
 * user switches between applications — dense sub-50 ms change trains
 * at the start and end of the switch, versus human-paced changes while
 * typing in the target app.
 */

#include <cstdio>
#include <vector>

#include "android/device.h"
#include "attack/change_detector.h"
#include "attack/sampler.h"
#include "bench_util.h"
#include "workload/typist.h"

using namespace gpusc;
using namespace gpusc::sim_literals;

int
main()
{
    setVerbose(false);
    bench::banner("Figure 13",
                  "counter-change bursts during app switches");

    android::DeviceConfig cfg;
    cfg.notificationMeanInterval = SimTime();
    android::Device dev(cfg);
    dev.boot();
    dev.launchTargetApp();

    const int fd = attack::openAndReserveCounters(
        dev.kgsl(), dev.attackerContext());

    struct Row
    {
        double tMs;
        std::int64_t dPrim;
        double gapMs;
    };
    std::vector<Row> rows;
    attack::ChangeDetector det;
    double lastT = -1.0;
    auto sampleUntil = [&](SimTime until) {
        while (dev.eq().now() < until) {
            dev.runFor(8_ms);
            gpu::CounterTotals totals{};
            attack::PcSampler::readOnce(dev.kgsl(), fd, totals);
            if (auto ch = det.onReading({dev.eq().now(), totals})) {
                const double t = ch->time.millis();
                rows.push_back(
                    {t, ch->delta[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ],
                     lastT < 0 ? 0.0 : t - lastT});
                lastT = t;
            }
        }
    };

    // Type a little in the target app.
    workload::Typist user(dev,
                          workload::TypingModel::forVolunteer(1, 3), 5);
    bool done = false;
    user.type("abcd", 300_ms, [&] { done = true; });
    while (!done)
        sampleUntil(dev.eq().now() + 100_ms);
    sampleUntil(dev.eq().now() + 500_ms);
    const double switchOutAt = dev.eq().now().millis();

    // Switch to another app, interact, switch back.
    dev.switchToOtherApp();
    sampleUntil(dev.eq().now() + 800_ms);
    dev.otherApp().interact();
    sampleUntil(dev.eq().now() + 1200_ms);
    dev.switchBackToTargetApp();
    sampleUntil(dev.eq().now() + 1200_ms);

    Table table({"time", "dLRZ_VISIBLE_PRIM", "gap-to-prev", "phase"});
    int burstChanges = 0;
    for (const Row &r : rows) {
        const bool inSwitch = r.tMs >= switchOutAt;
        const bool burst = inSwitch && r.gapMs > 0 && r.gapMs < 50.0;
        if (burst)
            ++burstChanges;
        table.addRow({Table::num(r.tMs, 0) + "ms",
                      std::to_string(r.dPrim),
                      Table::num(r.gapMs, 0) + "ms",
                      !inSwitch ? "typing in target app"
                      : burst   ? "app-switch burst (<50ms gaps)"
                                : "other app / settled"});
    }
    table.print();
    std::printf("\nchanges with <50ms gaps during switch phase: %d "
                "(paper: fierce sub-50ms change trains mark switches)\n",
                burstChanges);
    dev.kgsl().close(fd);
    return 0;
}
