/**
 * @file
 * Micro-benchmark guarding the telemetry overhead budget: replays the
 * same synthetic .gpct trace through the detached inference pipeline
 * with telemetry off and on, and reports both times plus the relative
 * overhead as JSON on stdout:
 *
 *   {"bench": "telemetry_overhead", "readings": ...,
 *    "seconds_off": ..., "seconds_on": ..., "overhead_pct": ...,
 *    "identical_output": true}
 *
 * The src/obs/ design contract is <2 % on this path (DESIGN.md
 * "Observability"): per-reading work is counter increments through
 * pre-resolved handles, and host-clock spans are confined to change
 * granularity plus a 1-in-64 reading sample. The bench also asserts
 * the other half of the contract — the inferred output is
 * bit-identical with telemetry on or off.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/telemetry.h"
#include "trace/trace_replayer.h"
#include "trace/trace_writer.h"
#include "util/logging.h"

using namespace gpusc;

namespace {

/** A minimal but non-trivial model so replay exercises the real
 *  classify path on every detected change. */
attack::SignatureModel
benchModel()
{
    attack::SignatureModel m;
    m.setModelKey("bench/synthetic");
    std::array<double, gpu::kNumSelectedCounters> scale{};
    scale.fill(1.0 / 1000.0);
    m.setScale(scale);
    for (char ch : {'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'}) {
        attack::LabelSignature sig;
        sig.label = attack::Label(1, ch);
        for (std::size_t d = 0; d < sig.centroid.size(); ++d)
            sig.centroid[d] = 8000 + 512 * (ch - 'a') + 31 * long(d);
        m.addSignature(sig);
    }
    m.setThreshold(3.0);
    return m;
}

/** Write @p n readings; every 16th simulates a keypress redraw. */
std::string
synthesizeTrace(std::uint64_t n)
{
    const std::string path = "/tmp/gpusc_telemetry_bench.gpct";
    trace::TraceHeader header;
    header.deviceKey = "bench/synthetic";
    header.seed = 7;

    trace::TraceWriter w;
    if (w.open(path, header) != trace::TraceError::None)
        fatal("cannot create %s", path.c_str());
    attack::Reading r;
    gpu::CounterTotals totals{};
    for (std::uint64_t i = 0; i < n; ++i) {
        r.time = SimTime::fromMs(std::int64_t(8 * i));
        if (i % 16 == 15) {
            const int key = int(i / 16) % 8;
            for (std::size_t d = 0; d < totals.size(); ++d)
                totals[d] +=
                    std::uint64_t(8000 + 512 * key + 31 * int(d));
        }
        r.totals = totals;
        if (w.writeReading(r) != trace::TraceError::None)
            fatal("write failed");
    }
    if (w.close() != trace::TraceError::None)
        fatal("close failed");
    return path;
}

/** One timed replay pass. */
double
timedReplay(trace::TraceReplayer &replayer, const std::string &path)
{
    const auto t0 = std::chrono::steady_clock::now();
    if (replayer.replayFile(path) != trace::TraceError::None)
        fatal("replay failed");
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Reconstructed text of the last replay (identity check). */
std::string
replayOutput(trace::TraceReplayer &replayer)
{
    return replayer.eavesdropper().inferredText();
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const std::uint64_t readings =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
    const int passes =
        argc > 2 ? std::atoi(argv[2]) : 21;

    const std::string path = synthesizeTrace(readings);
    const attack::SignatureModel model = benchModel();

    trace::TraceReplayer off(model);
    obs::Telemetry telemetry;
    attack::Eavesdropper::Params onParams;
    onParams.telemetry = &telemetry;
    trace::TraceReplayer on(model, onParams);

    // Warm-up both (page cache, allocator, lazily-resolved metrics).
    timedReplay(off, path);
    timedReplay(on, path);

    // Each pass times the two configurations back to back and takes
    // their paired ratio, so slow drift of the host (other tenants,
    // frequency scaling) cancels; the median of the per-pass ratios
    // is robust to the remaining spikes. The best absolute times are
    // reported alongside for context.
    double bestOff = 1e100, bestOn = 1e100;
    std::vector<double> ratios;
    for (int p = 0; p < passes; ++p) {
        const double tOff = timedReplay(off, path);
        const double tOn = timedReplay(on, path);
        bestOff = std::min(bestOff, tOff);
        bestOn = std::min(bestOn, tOn);
        if (tOff > 0)
            ratios.push_back(tOn / tOff);
    }
    std::sort(ratios.begin(), ratios.end());
    const double medianRatio =
        ratios.empty() ? 1.0 : ratios[ratios.size() / 2];

    const std::string textOff = replayOutput(off);
    const std::string textOn = replayOutput(on);
    const bool identical =
        textOff == textOn && off.eavesdropper().events().size() ==
                                 on.eavesdropper().events().size();
    if (!identical)
        fatal("telemetry changed the inferred output: '%s' vs '%s'",
              textOff.c_str(), textOn.c_str());

    const double overheadPct = 100.0 * (medianRatio - 1.0);
    std::printf("{\"bench\": \"telemetry_overhead\", "
                "\"readings\": %llu, "
                "\"passes\": %d, "
                "\"events\": %zu, "
                "\"seconds_off\": %.6f, "
                "\"seconds_on\": %.6f, "
                "\"overhead_pct\": %.2f, "
                "\"identical_output\": %s}\n",
                (unsigned long long)readings, passes,
                on.eavesdropper().events().size(), bestOff, bestOn,
                overheadPct, identical ? "true" : "false");
    std::remove(path.c_str());
    return 0;
}
