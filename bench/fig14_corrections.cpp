/**
 * @file
 * Figure 14: the credential field's counter changes encode the text
 * length — three letters typed, then two deleted with backspace, with
 * cursor blinks interleaved. The echo-line decoder recovers the exact
 * length at every field redraw.
 */

#include <cstdio>
#include <vector>

#include "android/device.h"
#include "attack/change_detector.h"
#include "attack/model_store.h"
#include "attack/sampler.h"
#include "attack/trainer.h"
#include "bench_util.h"

using namespace gpusc;
using namespace gpusc::sim_literals;

int
main()
{
    setVerbose(false);
    bench::banner("Figure 14",
                  "field-redraw changes for 3 inputs then 2 deletions "
                  "(+ cursor blinks)");

    android::DeviceConfig cfg;
    cfg.notificationMeanInterval = SimTime();
    const attack::OfflineTrainer trainer;
    const attack::SignatureModel &model =
        attack::ModelStore::global().getOrTrain(cfg, trainer);

    android::Device dev(cfg);
    dev.boot();
    dev.launchTargetApp();
    const int fd = attack::openAndReserveCounters(
        dev.kgsl(), dev.attackerContext());

    struct Row
    {
        double tMs;
        std::int64_t dPrim;
        std::int64_t l1;
        int decodedLen; // -1 = off the echo line
    };
    std::vector<Row> rows;
    attack::ChangeDetector det;
    auto sampleUntil = [&](SimTime until) {
        while (dev.eq().now() < until) {
            dev.runFor(8_ms);
            gpu::CounterTotals totals{};
            attack::PcSampler::readOnce(dev.kgsl(), fd, totals);
            if (auto ch = det.onReading({dev.eq().now(), totals})) {
                const auto len = model.decodeEchoLength(ch->delta);
                rows.push_back(
                    {ch->time.millis(),
                     ch->delta[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ],
                     gpu::l1Norm(ch->delta), len ? *len : -1});
            }
        }
    };

    sampleUntil(dev.eq().now() + 800_ms);

    const auto &layout = dev.ime().layout();
    for (char c : std::string("abc")) {
        dev.ime().pressKey(*layout.findChar(android::KbPage::Lower, c),
                           110_ms);
        sampleUntil(dev.eq().now() + 600_ms);
    }
    for (int i = 0; i < 2; ++i) {
        dev.ime().pressKey(*dev.ime().backspaceKey(), 100_ms);
        sampleUntil(dev.eq().now() + 700_ms);
    }
    // Idle: let the cursor blink a few times.
    sampleUntil(dev.eq().now() + 2_s);

    Table table(
        {"time", "dLRZ_VISIBLE_PRIM", "|change|_L1", "decoded length"});
    for (const Row &r : rows) {
        table.addRow({Table::num(r.tMs, 0) + "ms",
                      std::to_string(r.dPrim), std::to_string(r.l1),
                      r.decodedLen >= 0 ? std::to_string(r.decodedLen)
                                        : "- (not a field redraw)"});
    }
    table.print();
    std::printf("\nPaper shape: field redraw changes step by one "
                "character per input/deletion; blink changes are "
                "recognisable and excluded.\n");
    dev.kgsl().close(fd);
    return 0;
}
