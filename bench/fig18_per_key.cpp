/**
 * @file
 * Figure 18: inference accuracy over individual key presses across the
 * full keyboard character set (lowercase, digits, ',', '.', uppercase,
 * symbols).
 */

#include <cstdio>

#include "bench_util.h"
#include "gfx/font.h"

using namespace gpusc;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const int trials = argc > 1 ? std::atoi(argv[1]) : 400;
    bench::banner("Figure 18",
                  "per-key inference accuracy over the Fig. 18 "
                  "character order");

    eval::ExperimentConfig cfg;
    cfg.seed = 1800;
    // Uniform draw across all four character classes so every key
    // accumulates samples.
    cfg.charset = workload::CharsetMix{0.30, 0.25, 0.15, 0.30};
    eval::ExperimentRunner runner(cfg, attack::ModelStore::global());
    std::vector<eval::TrialResult> trialsOut;
    const eval::AccuracyStats stats =
        runner.runTrials(trials, 10, 12, &trialsOut);

    const auto perKey = stats.perKeyAccuracy();
    Table table({"key", "accuracy", "samples"});
    double weakest = 1.0;
    char weakestKey = 0;
    for (char c : gfx::fontCharset()) {
        auto it = perKey.find(c);
        if (it == perKey.end())
            continue;
        table.addRow({std::string(1, c), Table::pct(it->second),
                      std::to_string(stats.perKeyTotal(c))});
        if (it->second < weakest) {
            weakest = it->second;
            weakestKey = c;
        }
    }
    table.print();
    std::printf("\noverall per-key accuracy: %s; weakest key: '%c' at "
                "%s\n",
                Table::pct(stats.charAccuracy()).c_str(), weakestKey,
                Table::pct(weakest).c_str());
    std::printf("Paper: most keys >95%%; a few minimum-overdraw "
                "symbols dip to ~70%%.\n");
    return 0;
}
