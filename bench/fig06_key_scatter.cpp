/**
 * @file
 * Figure 6: per-key signature scatter — each key's popup produces a
 * unique (LRZ, RAS) counter-change pair, and repeated presses of the
 * same key land on (nearly) the same point.
 */

#include <cstdio>
#include <map>
#include <string>

#include "attack/model_store.h"
#include "attack/trainer.h"
#include "bench_util.h"

using namespace gpusc;

int
main()
{
    setVerbose(false);
    bench::banner("Figure 6",
                  "per-key changes of PERF_LRZ_FULL_8X8_TILES vs "
                  "PERF_RAS_FULLY_COVERED_8X4_TILES");

    android::DeviceConfig cfg;
    const attack::OfflineTrainer trainer;
    const attack::SignatureModel &model =
        attack::ModelStore::global().getOrTrain(cfg, trainer);

    Table table({"key", "dLRZ_FULL_8X8", "dRAS_FULLY_COVERED_8X4",
                 "dLRZ_VISIBLE_PIXEL"});
    for (const auto &sig : model.signatures()) {
        if (sig.label.size() != 1)
            continue;
        const char c = sig.label[0];
        if (c < 'a' || c > 'z')
            continue;
        table.addRow(
            {sig.label,
             std::to_string(sig.centroid[gpu::LRZ_FULL_8X8_TILES]),
             std::to_string(
                 sig.centroid[gpu::RAS_FULLY_COVERED_8X4_TILES]),
             std::to_string(
                 sig.centroid[gpu::LRZ_VISIBLE_PIXEL_AFTER_LRZ])});
    }
    table.print();

    // Uniqueness check mirroring the figure's separated point cloud.
    std::printf("\nmin inter-key distance (normalised): %.4f\n",
                model.minInterClassDistance());
    std::printf("classification threshold C_th:        %.4f\n",
                model.threshold());
    return 0;
}
