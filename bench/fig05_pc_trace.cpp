/**
 * @file
 * Figure 5: variations of PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ due to
 * different key presses and system factors.
 *
 * Reproduces the paper's trace: pressing 'w' and 'n' produces large,
 * key-specific changes of the LRZ counter; a rich-animation keyboard
 * duplicates a popup frame; a read landing mid-render splits a change
 * into two pieces that sum to the true delta; cursor blinking and a
 * notification produce small unrelated changes.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "android/device.h"
#include "attack/change_detector.h"
#include "attack/sampler.h"
#include "bench_util.h"

using namespace gpusc;
using namespace gpusc::sim_literals;

namespace {

struct TraceRow
{
    double tMs;
    std::int64_t lrzPrimDelta;
    std::int64_t l1;
};

} // namespace

int
main()
{
    setVerbose(false);
    bench::banner("Figure 5",
                  "PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ changes for key "
                  "presses and system factors (OnePlus 8 Pro, Gboard)");

    android::DeviceConfig cfg;
    cfg.notificationMeanInterval = SimTime(); // inject one manually
    android::Device dev(cfg);
    dev.boot();
    dev.launchTargetApp();

    const int fd = attack::openAndReserveCounters(
        dev.kgsl(), dev.attackerContext());
    if (fd < 0)
        fatal("cannot open %s", kgsl::KgslDevice::path());

    attack::ChangeDetector det;
    std::vector<TraceRow> rows;
    auto sampleUntil = [&](SimTime until) {
        while (dev.eq().now() < until) {
            dev.runFor(8_ms);
            gpu::CounterTotals totals{};
            attack::PcSampler::readOnce(dev.kgsl(), fd, totals);
            if (auto ch = det.onReading({dev.eq().now(), totals}))
                rows.push_back(
                    {ch->time.millis(),
                     ch->delta[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ],
                     gpu::l1Norm(ch->delta)});
        }
    };

    sampleUntil(dev.eq().now() + 1200_ms);
    const std::size_t afterIdle = rows.size();

    // Press 'w' twice and 'n' once, as in the figure.
    const auto &layout = dev.ime().layout();
    for (char c : std::string("wwn")) {
        const android::Key *key =
            layout.findChar(android::KbPage::Lower, c);
        dev.ime().pressKey(*key, 120_ms);
        sampleUntil(dev.eq().now() + 700_ms);
    }

    // System factors: a notification posts; cursor blink continues.
    dev.statusBar().postNotification();
    sampleUntil(dev.eq().now() + 1500_ms);

    Table table({"time", "dLRZ_VISIBLE_PRIM", "|change|_L1", "source"});
    auto classify = [&](const TraceRow &r) -> std::string {
        if (r.l1 > 500000)
            return "key-press popup (first change)";
        if (r.l1 > 100000)
            return r.lrzPrimDelta < 60 ? "text echo"
                                       : "notification (status bar)";
        if (r.l1 > 5000)
            return "popup dismissal";
        return "cursor blink";
    };
    for (const TraceRow &r : rows) {
        table.addRow({Table::num(r.tMs, 0) + "ms",
                      std::to_string(r.lrzPrimDelta),
                      std::to_string(r.l1), classify(r)});
    }
    table.print();

    std::printf("\nIdle-period changes before first press: %zu "
                "(counters are flat while the display is static)\n",
                afterIdle);
    std::printf("Paper shape: each key press yields 3 changes; the "
                "first is large and key-unique ('w' vs 'n' differ); "
                "repeated 'w' presses repeat the same first change.\n");
    dev.kgsl().close(fd);
    return 0;
}
