/**
 * @file
 * Micro-benchmark guarding the *live plane* overhead budget: ingests
 * the same synthetic reading stream through an IngestService with the
 * plane dormant (allocated but never ticking past its single giant
 * window) and with the plane active at the configured fine width
 * (windowing + SLO evaluation, both sinks off so the measurement
 * isolates plane work from I/O), and reports the median overhead of
 * active over dormant as JSON on stdout, mirrored to
 * BENCH_live_obs.json:
 *
 *   {"bench": "live_telemetry_overhead", "readings": ...,
 *    "windows": ..., "seconds_off": ..., "seconds_base": ...,
 *    "seconds_on": ..., "overhead_pct": ...,
 *    "identical_output": true, "threshold_pct": ...}
 *
 * The DESIGN.md contract for the plane is <3 % over the telemetry-on
 * baseline on the streaming path: a per-pump tick is one branch while
 * inside a window, and a window close snapshots counters through the
 * registry's existing tables. The bench exits non-zero when the
 * median overhead exceeds the threshold (argv-overridable) or the
 * inferred output differs between plane-on and plane-off (the
 * plane-off configuration is still run for exactly that check, and
 * its time is reported as seconds_off for context).
 *
 * The reference load is a session *fleet* (the service's designed
 * operating point — stream_throughput's capacity segment runs
 * 128-1200 sessions): plane cost is per closed window and does not
 * scale with the fleet, so the budget is stated against the work the
 * plane actually observes. A single near-idle session would make the
 * ratio meaningless (the simulated pipeline drains 100 ms of sim
 * time in ~1 us of host time, ~5 orders denser than the real attack
 * the plane was sized for).
 */

#include <ctime>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/live/live_plane.h"
#include "stream/ingest_service.h"
#include "util/logging.h"

using namespace gpusc;

namespace {

/** Same minimal model the telemetry_overhead bench attacks with. */
attack::SignatureModel
benchModel()
{
    attack::SignatureModel m;
    m.setModelKey("bench/live-synthetic");
    std::array<double, gpu::kNumSelectedCounters> scale{};
    scale.fill(1.0 / 1000.0);
    m.setScale(scale);
    for (char ch : {'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'}) {
        attack::LabelSignature sig;
        sig.label = attack::Label(1, ch);
        for (std::size_t d = 0; d < sig.centroid.size(); ++d)
            sig.centroid[d] = 8000 + 512 * (ch - 'a') + 31 * long(d);
        m.addSignature(sig);
    }
    m.setThreshold(3.0);
    return m;
}

/** @p n readings at 8 ms cadence; every 16th is a keypress redraw. */
std::vector<attack::Reading>
synthesizeReadings(std::uint64_t n)
{
    std::vector<attack::Reading> out;
    out.reserve(n);
    attack::Reading r;
    gpu::CounterTotals totals{};
    for (std::uint64_t i = 0; i < n; ++i) {
        r.time = SimTime::fromMs(std::int64_t(8 * i));
        if (i % 16 == 15) {
            const int key = int(i / 16) % 8;
            for (std::size_t d = 0; d < totals.size(); ++d)
                totals[d] +=
                    std::uint64_t(8000 + 512 * key + 31 * int(d));
        }
        r.totals = totals;
        out.push_back(r);
    }
    return out;
}

/**
 * Per-process CPU seconds. The overhead ratio is gated on CPU time,
 * not wall time: the bench runs single-threaded, so CPU time captures
 * exactly the work under test while excluding the other tenants of a
 * shared CI host — wall-clock medians there swing by more than the
 * entire overhead budget.
 */
double
cpuSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return double(ts.tv_sec) + 1e-9 * double(ts.tv_nsec);
}

struct PassResult
{
    double seconds = 0.0;
    std::string inferred;
    std::uint64_t drained = 0;
    std::uint64_t windows = 0;
};

/**
 * Pass configurations. `Dormant` enables the plane with a fine window
 * wider than any run, so the plane object graph is allocated exactly
 * as in `Active` but the per-tick work degenerates to a handful of
 * map lookups and no window ever closes. Measuring Active against
 * Dormant (instead of against Off) keeps the two processes' heap
 * allocation sequences identical, which removes the dominant noise
 * source on this gate: per-process layout bias. With an Off baseline
 * the mere *presence* of the early plane allocations shifts every
 * later allocation, and the resulting cache-placement delta measures
 * 3-5% in either direction — swamping the ~1% real cost. Off passes
 * are still run for the bit-identical-output check and reported for
 * context, but the gate compares Active vs Dormant.
 */
enum class Mode
{
    Off,     ///< no plane at all (identity baseline)
    Dormant, ///< plane allocated, one giant window (timing baseline)
    Active,  ///< plane at the configured fine width (measured)
};

/** One timed ingest pass in the given plane mode. */
PassResult
ingestPass(const attack::SignatureModel &model,
           const std::vector<attack::Reading> &readings,
           std::size_t fleet, Mode mode, long fineMs)
{
    stream::IngestService::Params params;
    params.backpressure = stream::IngestService::Backpressure::Block;
    params.sessions.session.adaptation = false;
    stream::IngestService svc(model, params);
    if (mode != Mode::Off) {
        obs::live::LiveConfig cfg; // both sinks off: pure plane work
        cfg.series.fineWidth = mode == Mode::Active
                                   ? SimTime::fromMs(fineMs)
                                   : SimTime::fromMs(1000000000L);
        svc.enableLivePlane(std::move(cfg));
    }

    const double t0 = cpuSeconds();
    std::size_t sincePump = 0;
    for (const attack::Reading &r : readings) {
        for (stream::SessionId sid = 0; sid < fleet; ++sid)
            svc.offer(sid, r);
        if (++sincePump == 64) {
            svc.pump();
            sincePump = 0;
        }
    }
    svc.pump();
    if (mode != Mode::Off)
        svc.finishLivePlane();
    const double t1 = cpuSeconds();

    PassResult out;
    out.seconds = t1 - t0;
    const stream::Session *s = svc.sessions().find(0);
    if (s == nullptr)
        fatal("live_telemetry_overhead: session vanished");
    out.inferred = s->eavesdropper().inferredText();
    out.drained = s->readingsDrained();
    if (mode != Mode::Off)
        out.windows = svc.livePlane()->series().windowsClosed();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bool quick = false;
    double thresholdPct = 3.0;
    // Many short passes beat few long ones here: a pair of short
    // passes spans ~50 ms of host time, tight enough that frequency
    // scaling barely moves between its two members, and 41 pairs give
    // the median real statistical depth.
    std::uint64_t readings = 2000;
    std::size_t fleet = 128;
    long fineMs = 100;
    int passes = 41;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--threshold-pct" && i + 1 < argc) {
            thresholdPct = std::atof(argv[++i]);
        } else if (arg == "--readings" && i + 1 < argc) {
            readings = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--fleet" && i + 1 < argc) {
            fleet = std::size_t(std::atol(argv[++i]));
        } else if (arg == "--fine-ms" && i + 1 < argc) {
            fineMs = std::atol(argv[++i]);
        } else if (arg == "--passes" && i + 1 < argc) {
            passes = std::atoi(argv[++i]);
        } else {
            fatal("usage: %s [--quick] [--threshold-pct P] "
                  "[--readings N] [--fleet N] [--fine-ms N] [--passes N]",
                  argv[0]);
        }
    }
    if (quick) {
        // Shorter passes and a smaller population: enough to smoke
        // the gate path, not enough to resolve 1% from 3%.
        readings = std::min<std::uint64_t>(readings, 1000);
        passes = std::min(passes, 15);
    }

    const attack::SignatureModel model = benchModel();
    const std::vector<attack::Reading> stream =
        synthesizeReadings(readings);

    // Warm-up (allocator, lazily-resolved metric handles), then the
    // bit-identical check: the plane must not perturb inference.
    ingestPass(model, stream, fleet, Mode::Off, fineMs);
    PassResult on = ingestPass(model, stream, fleet, Mode::Active, fineMs);
    const PassResult off =
        ingestPass(model, stream, fleet, Mode::Off, fineMs);

    const bool identical = on.inferred == off.inferred &&
                           on.drained == off.drained;
    if (!identical)
        fatal("live plane changed the inferred output: "
              "'%s' vs '%s'",
              on.inferred.c_str(), off.inferred.c_str());

    // Each pass runs the two configurations back to back (alternating
    // which goes first, so a monotone host slowdown cannot
    // systematically penalise one side) and contributes one *paired
    // ratio*; the gate is the median of those ratios. Pairing matters
    // on a shared host: absolute CPU time per pass drifts ~15% across
    // a run with host frequency, which skews the medians of two
    // separately-sorted populations, while adjacent-in-time pairs see
    // nearly the same frequency and the drift divides out.
    std::vector<double> baseTimes, onTimes;
    for (int p = 0; p < passes; ++p) {
        if (p % 2 == 0) {
            baseTimes.push_back(
                ingestPass(model, stream, fleet, Mode::Dormant, fineMs)
                    .seconds);
            onTimes.push_back(
                ingestPass(model, stream, fleet, Mode::Active, fineMs)
                    .seconds);
        } else {
            onTimes.push_back(
                ingestPass(model, stream, fleet, Mode::Active, fineMs)
                    .seconds);
            baseTimes.push_back(
                ingestPass(model, stream, fleet, Mode::Dormant, fineMs)
                    .seconds);
        }
    }
    // Raw populations on stderr: when a CI gate trips, the
    // distribution tells noise apart from a real regression.
    std::fprintf(stderr, "pass cpu-seconds (dormant/active):\n");
    std::vector<double> ratios;
    for (std::size_t i = 0; i < baseTimes.size(); ++i) {
        std::fprintf(stderr, "  %.6f  %.6f\n", baseTimes[i],
                     onTimes[i]);
        if (baseTimes[i] > 0)
            ratios.push_back(onTimes[i] / baseTimes[i]);
    }
    if (ratios.empty())
        fatal("live_telemetry_overhead: no usable passes");
    std::sort(ratios.begin(), ratios.end());
    std::sort(baseTimes.begin(), baseTimes.end());
    std::sort(onTimes.begin(), onTimes.end());
    const double medBase = baseTimes[baseTimes.size() / 2];
    const double medOn = onTimes[onTimes.size() / 2];
    const double medianRatio = ratios[ratios.size() / 2];
    const double overheadPct = 100.0 * (medianRatio - 1.0);

    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "{\"bench\": \"live_telemetry_overhead\", "
                  "\"readings\": %llu, "
                  "\"fleet\": %zu, "
                  "\"passes\": %d, "
                  "\"windows\": %llu, "
                  "\"seconds_off\": %.6f, "
                  "\"seconds_base\": %.6f, "
                  "\"seconds_on\": %.6f, "
                  "\"overhead_pct\": %.2f, "
                  "\"identical_output\": %s, "
                  "\"threshold_pct\": %.2f}",
                  (unsigned long long)readings, fleet, passes,
                  (unsigned long long)on.windows, off.seconds,
                  medBase, medOn, overheadPct,
                  identical ? "true" : "false", thresholdPct);
    std::printf("%s\n", buf);
    bench::writeJsonMirror("BENCH_live_obs.json", buf);

    if (overheadPct > thresholdPct)
        fatal("live plane overhead %.2f%% exceeds the %.2f%% budget",
              overheadPct, thresholdPct);
    return 0;
}
