/**
 * @file
 * End-to-end pipeline throughput: the same experiment campaign run
 * serially and across the parallel evaluation engine (src/exec/),
 * plus a micro-timing of the SignatureModel::classify hot path.
 * Reports JSON on stdout and mirrors it to BENCH_pipeline.json:
 *
 *   {"bench": "pipeline_throughput", "trials": ...,
 *    "classify_ns_per_op": ...,
 *    "serial": {"seconds": ..., "trials_per_sec": ...},
 *    "parallel": [{"threads": 2, "seconds": ..., "trials_per_sec":
 *                  ..., "speedup": ..., "deterministic": true}, ...]}
 *
 * "deterministic" asserts the parallel run's (truth, inferred) trial
 * sequence is byte-identical to the single-thread run — the core
 * contract of exec::ParallelRunner.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "attack/model_store.h"
#include "eval/experiment.h"
#include "exec/parallel_runner.h"
#include "util/logging.h"
#include "util/rng.h"

using namespace gpusc;

namespace {

constexpr std::uint64_t kSeed = 20260807;

eval::ExperimentConfig
campaignConfig()
{
    eval::ExperimentConfig cfg;
    cfg.seed = kSeed;
    return cfg;
}

struct CampaignTiming
{
    double seconds = 0.0;
    std::vector<eval::TrialResult> trials;
};

CampaignTiming
timeCampaign(std::size_t threads, int trials)
{
    exec::ParallelRunner runner(campaignConfig(),
                                attack::ModelStore::global(),
                                threads);
    const auto t0 = std::chrono::steady_clock::now();
    exec::ParallelResult res = runner.runTrials(trials, 8, 12);
    const auto t1 = std::chrono::steady_clock::now();
    CampaignTiming out;
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    out.trials = std::move(res.trials);
    return out;
}

bool
sameTrials(const std::vector<eval::TrialResult> &a,
           const std::vector<eval::TrialResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].truth != b[i].truth || a[i].inferred != b[i].inferred)
            return false;
    return true;
}

/** Nanoseconds per SignatureModel::classify on the trained model. */
double
classifyNsPerOp()
{
    const attack::OfflineTrainer trainer;
    const attack::SignatureModel &model =
        attack::ModelStore::global().getOrTrain(
            android::DeviceConfig{}, trainer);

    // Query mix: real centroids plus perturbations, so both the
    // early-exit and the full-sum paths are represented.
    Rng rng(kSeed);
    std::vector<gpu::CounterVec> queries;
    for (int i = 0; i < 256; ++i) {
        const attack::LabelSignature &sig =
            rng.pick(model.signatures());
        gpu::CounterVec q = sig.centroid;
        for (std::int64_t &v : q)
            v += rng.uniformInt(-50, 50);
        queries.push_back(q);
    }

    const int iters = 200000;
    double checksum = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        checksum +=
            model.classify(queries[std::size_t(i) % queries.size()])
                .distance;
    const auto t1 = std::chrono::steady_clock::now();
    if (checksum < 0.0) // defeat dead-code elimination
        std::printf("# %f\n", checksum);
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           double(iters);
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const int trials =
        argc > 1 ? int(std::strtol(argv[1], nullptr, 10)) : 48;

    // Train the model once up front so no timing includes it.
    const attack::OfflineTrainer trainer;
    attack::ModelStore::global().getOrTrain(android::DeviceConfig{},
                                            trainer);

    const double classifyNs = classifyNsPerOp();
    const CampaignTiming serial = timeCampaign(1, trials);

    std::string json = "{\"bench\": \"pipeline_throughput\", ";
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "\"trials\": %d, \"classify_ns_per_op\": %.1f, "
                  "\"serial\": {\"seconds\": %.3f, "
                  "\"trials_per_sec\": %.2f}, \"parallel\": [",
                  trials, classifyNs, serial.seconds,
                  serial.seconds > 0
                      ? double(trials) / serial.seconds
                      : 0.0);
    json += buf;

    bool first = true;
    for (const std::size_t threads : {2u, 4u, 8u}) {
        const CampaignTiming par = timeCampaign(threads, trials);
        const bool deterministic =
            sameTrials(serial.trials, par.trials);
        std::snprintf(
            buf, sizeof buf,
            "%s{\"threads\": %zu, \"seconds\": %.3f, "
            "\"trials_per_sec\": %.2f, \"speedup\": %.2f, "
            "\"deterministic\": %s}",
            first ? "" : ", ", threads, par.seconds,
            par.seconds > 0 ? double(trials) / par.seconds : 0.0,
            par.seconds > 0 ? serial.seconds / par.seconds : 0.0,
            deterministic ? "true" : "false");
        json += buf;
        first = false;
    }
    json += "]}";

    std::printf("%s\n", json.c_str());
    std::FILE *f = std::fopen("BENCH_pipeline.json", "w");
    if (f) {
        std::fprintf(f, "%s\n", json.c_str());
        std::fclose(f);
    } else {
        warn("pipeline_throughput: cannot write BENCH_pipeline.json");
    }
    return 0;
}
