/**
 * @file
 * End-to-end pipeline throughput: the same experiment campaign run
 * serially and across the parallel evaluation engine (src/exec/),
 * plus micro-timings of the SignatureModel classify hot path in
 * every shape the pipeline exercises it — single-call vs batched,
 * active SIMD backend vs forced scalar. Reports JSON on stdout and
 * mirrors it to BENCH_pipeline.json:
 *
 *   {"bench": "pipeline_throughput", "trials": ...,
 *    "simd_backend": "avx2",
 *    "classify_ns_per_op": ...,          // batched, active backend
 *    "classify_single_ns_per_op": ...,   // per-call, active backend
 *    "classify_scalar_ns_per_op": ...,   // batched, scalar backend
 *    "pr5_baseline_ns_per_op": 860.0,
 *    "simd_speedup": ..., "speedup_vs_pr5": ..., "speedup_ok": true,
 *    "batch_equals_single": true,
 *    "serial": {"seconds": ..., "trials_per_sec": ...},
 *    "parallel": [{"threads": 2, "seconds": ..., "trials_per_sec":
 *                  ..., "speedup": ..., "deterministic": true}, ...]}
 *
 * "deterministic" asserts the parallel run's (truth, inferred) trial
 * sequence is byte-identical to the single-thread run — the core
 * contract of exec::ParallelRunner. "batch_equals_single" asserts
 * classifyBatch returns bit-identical matches (same signature, same
 * distance) as per-call classify over the whole query mix.
 * "speedup_ok" is the perf gate: on a vector-capable host the
 * batched classify must beat the PR-5 scalar baseline (~860 ns/op,
 * see ROADMAP.md) by >= 4x; scalar-only hosts pass vacuously.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "attack/model_store.h"
#include "bench_util.h"
#include "eval/experiment.h"
#include "exec/parallel_runner.h"
#include "simd/kernels.h"
#include "util/logging.h"
#include "util/rng.h"

using namespace gpusc;

namespace {

constexpr std::uint64_t kSeed = 20260807;

/** PR-5 classify cost (scalar early-exit rewrites, ROADMAP.md). */
constexpr double kPr5BaselineNs = 860.0;

eval::ExperimentConfig
campaignConfig()
{
    eval::ExperimentConfig cfg;
    cfg.seed = kSeed;
    return cfg;
}

struct CampaignTiming
{
    double seconds = 0.0;
    std::vector<eval::TrialResult> trials;
};

CampaignTiming
timeCampaign(std::size_t threads, int trials)
{
    exec::ParallelRunner runner(campaignConfig(),
                                attack::ModelStore::global(),
                                threads);
    const auto t0 = std::chrono::steady_clock::now();
    exec::ParallelResult res = runner.runTrials(trials, 8, 12);
    const auto t1 = std::chrono::steady_clock::now();
    CampaignTiming out;
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    out.trials = std::move(res.trials);
    return out;
}

bool
sameTrials(const std::vector<eval::TrialResult> &a,
           const std::vector<eval::TrialResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].truth != b[i].truth || a[i].inferred != b[i].inferred)
            return false;
    return true;
}

/** Query mix: real centroids plus perturbations, so both the
 *  early-exit and the full-sum kernel paths are represented. */
std::vector<gpu::CounterVec>
queryMix(const attack::SignatureModel &model)
{
    Rng rng(kSeed);
    std::vector<gpu::CounterVec> queries;
    for (int i = 0; i < 256; ++i) {
        const attack::LabelSignature &sig =
            rng.pick(model.signatures());
        gpu::CounterVec q = sig.centroid;
        for (std::int64_t &v : q)
            v += rng.uniformInt(-50, 50);
        queries.push_back(q);
    }
    return queries;
}

/** Nanoseconds per classify, one call per query. */
double
classifySingleNs(const attack::SignatureModel &model,
                 const std::vector<gpu::CounterVec> &queries)
{
    const int iters = 200000;
    double checksum = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        checksum +=
            model.classify(queries[std::size_t(i) % queries.size()])
                .distance;
    const auto t1 = std::chrono::steady_clock::now();
    if (checksum < 0.0) // defeat dead-code elimination
        std::printf("# %f\n", checksum);
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           double(iters);
}

/** Nanoseconds per classify through the batch entry point. */
double
classifyBatchNs(const attack::SignatureModel &model,
                const std::vector<gpu::CounterVec> &queries)
{
    const int rounds = 800;
    std::vector<attack::SignatureModel::Match> matches(queries.size());
    double checksum = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) {
        model.classifyBatch(queries, matches);
        checksum += matches[std::size_t(r) % matches.size()].distance;
    }
    const auto t1 = std::chrono::steady_clock::now();
    if (checksum < 0.0)
        std::printf("# %f\n", checksum);
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           double(rounds) / double(queries.size());
}

/** classifyBatch must be bit-identical to per-call classify. */
bool
batchEqualsSingle(const attack::SignatureModel &model,
                  const std::vector<gpu::CounterVec> &queries)
{
    std::vector<attack::SignatureModel::Match> matches(queries.size());
    model.classifyBatch(queries, matches);
    for (std::size_t i = 0; i < queries.size(); ++i) {
        const attack::SignatureModel::Match one =
            model.classify(queries[i]);
        if (one.sig != matches[i].sig ||
            one.distance != matches[i].distance)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const int trials =
        argc > 1 ? int(std::strtol(argv[1], nullptr, 10)) : 48;

    // Train the model once up front so no timing includes it.
    const attack::OfflineTrainer trainer;
    const attack::SignatureModel &model =
        attack::ModelStore::global().getOrTrain(android::DeviceConfig{},
                                                trainer);
    const std::vector<gpu::CounterVec> queries = queryMix(model);

    const simd::Backend active = simd::activeBackend();
    const double classifyNs = classifyBatchNs(model, queries);
    const double classifySingleNs_ = classifySingleNs(model, queries);
    const bool batchOk = batchEqualsSingle(model, queries);

    // Same measurements with the kernel layer pinned to the scalar
    // reference backend — the in-process control for the SIMD win.
    simd::forceBackend(simd::Backend::Scalar);
    const double scalarNs = classifyBatchNs(model, queries);
    const double scalarSingleNs = classifySingleNs(model, queries);
    const bool scalarBatchOk = batchEqualsSingle(model, queries);
    simd::forceBackend(active);

    const double speedupVsPr5 = kPr5BaselineNs / classifyNs;
    // Vector hosts must clear >= 4x vs the PR-5 scalar baseline; on
    // a scalar-only host there is no vector win to gate.
    const bool speedupOk =
        active == simd::Backend::Scalar || speedupVsPr5 >= 4.0;

    const CampaignTiming serial = timeCampaign(1, trials);

    std::string json = "{\"bench\": \"pipeline_throughput\", ";
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "\"trials\": %d, \"simd_backend\": \"%s\", "
        "\"classify_ns_per_op\": %.1f, "
        "\"classify_single_ns_per_op\": %.1f, "
        "\"classify_scalar_ns_per_op\": %.1f, "
        "\"classify_scalar_single_ns_per_op\": %.1f, "
        "\"pr5_baseline_ns_per_op\": %.1f, "
        "\"simd_speedup\": %.2f, \"speedup_vs_pr5\": %.2f, "
        "\"speedup_ok\": %s, \"batch_equals_single\": %s, "
        "\"serial\": {\"seconds\": %.3f, \"trials_per_sec\": %.2f}, "
        "\"parallel\": [",
        trials, simd::backendName(active).c_str(), classifyNs,
        classifySingleNs_, scalarNs, scalarSingleNs, kPr5BaselineNs,
        scalarNs / classifyNs, speedupVsPr5,
        speedupOk ? "true" : "false",
        batchOk && scalarBatchOk ? "true" : "false", serial.seconds,
        serial.seconds > 0 ? double(trials) / serial.seconds : 0.0);
    json += buf;

    bool allDeterministic = true;
    bool first = true;
    for (const std::size_t threads : {2u, 4u, 8u}) {
        const CampaignTiming par = timeCampaign(threads, trials);
        const bool deterministic =
            sameTrials(serial.trials, par.trials);
        allDeterministic = allDeterministic && deterministic;
        std::snprintf(
            buf, sizeof buf,
            "%s{\"threads\": %zu, \"seconds\": %.3f, "
            "\"trials_per_sec\": %.2f, \"speedup\": %.2f, "
            "\"deterministic\": %s}",
            first ? "" : ", ", threads, par.seconds,
            par.seconds > 0 ? double(trials) / par.seconds : 0.0,
            par.seconds > 0 ? serial.seconds / par.seconds : 0.0,
            deterministic ? "true" : "false");
        json += buf;
        first = false;
    }
    json += "]}";

    std::printf("%s\n", json.c_str());
    bench::writeJsonMirror("BENCH_pipeline.json", json);

    // Exit non-zero on any gate so CI can run this binary directly.
    if (!batchOk || !scalarBatchOk)
        warn("pipeline_throughput: batch != single classify");
    if (!speedupOk)
        warn("pipeline_throughput: classify %.1f ns/op misses the "
             ">=4x gate vs the %.0f ns/op PR-5 baseline",
             classifyNs, kPr5BaselineNs);
    if (!allDeterministic)
        warn("pipeline_throughput: thread-count determinism violated");
    return batchOk && scalarBatchOk && speedupOk && allDeterministic
               ? 0
               : 1;
}
