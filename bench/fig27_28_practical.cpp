/**
 * @file
 * Figures 27-28: practical usage sessions — five volunteers type
 * random credentials into target apps while switching to other apps
 * mid-input, correcting typos with backspace and free-using other
 * apps; the attack's trace/character accuracy per volunteer.
 */

#include <cstdio>

#include "attack/model_store.h"
#include "attack/trainer.h"
#include "bench_util.h"
#include "workload/session.h"

using namespace gpusc;
using namespace gpusc::sim_literals;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const int sessionsPerVolunteer = argc > 1 ? std::atoi(argv[1]) : 10;
    bench::banner("Figures 27-28",
                  "practical sessions: app switches + corrections + "
                  "free use (" +
                      std::to_string(sessionsPerVolunteer) +
                      " sessions/volunteer)");

    const char *apps[] = {"chase", "amex", "fidelity",
                          "schwab", "myfico", "experian"};

    Table table({"volunteer", "trace accuracy", "char accuracy",
                 "inputs", "switches observed"});
    eval::AccuracyStats overall;
    for (std::size_t v = 0; v < 5; ++v) {
        eval::AccuracyStats stats;
        std::uint64_t bursts = 0;
        std::size_t inputs = 0;
        for (int s = 0; s < sessionsPerVolunteer; ++s) {
            android::DeviceConfig devCfg;
            devCfg.app = apps[(v + std::size_t(s)) % 6];
            devCfg.seed = 2700 + v * 101 + std::size_t(s) * 13;
            const attack::OfflineTrainer trainer;
            const attack::SignatureModel &model =
                attack::ModelStore::global().getOrTrain(devCfg,
                                                        trainer);
            android::Device dev(devCfg);
            attack::Eavesdropper spy(dev, model);
            dev.boot();
            spy.start();

            workload::SessionConfig sessCfg;
            sessCfg.volunteer = v;
            sessCfg.seed = devCfg.seed ^ 0xabcd;
            workload::SessionDriver session(dev, sessCfg);
            session.start();
            // ~3 minutes per session, as in the paper.
            const SimTime deadline = dev.eq().now() + 300_ms * 1000;
            while (!session.done() && dev.eq().now() < deadline)
                dev.runFor(500_ms);
            dev.runFor(1_s);

            for (const workload::InputEpisode &ep :
                 session.episodes()) {
                if (ep.end.ns() == 0)
                    continue; // unfinished input
                const std::string inferred =
                    spy.inferredTextBetween(
                        ep.start - 100_ms, ep.end + 600_ms);
                stats.add(ep.truth, inferred);
                overall.add(ep.truth, inferred);
                ++inputs;
            }
            bursts += spy.switchDetector().burstsDetected();
        }
        table.addRow({workload::volunteerProfiles()[v].name,
                      Table::pct(stats.textAccuracy()),
                      Table::pct(stats.charAccuracy()),
                      std::to_string(inputs),
                      std::to_string(bursts)});
    }
    table.print();
    std::printf("\noverall: trace %s, char %s (paper: 78.0%% trace, "
                "97.1%% char — lower than lab conditions because of "
                "switches and corrections)\n",
                Table::pct(overall.textAccuracy()).c_str(),
                Table::pct(overall.charAccuracy()).c_str());
    return 0;
}
