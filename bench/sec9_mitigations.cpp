/**
 * @file
 * Section 9: mitigation evaluation.
 *
 *  - Disabling key-press popups stops content inference but the input
 *    *length* still leaks through the credential field's echo (§9.1).
 *  - KGSL role-based access control (SELinux ioctl whitelisting)
 *    denies the unprivileged attacker while a profiler role keeps
 *    working (§9.2).
 *  - The PNC app's login animation obfuscates the counters (§9.3,
 *    paper: accuracy falls to 30.2%).
 *  - OS-injected random GPU workloads trade accuracy against GPU
 *    overhead (§9.3's open question, swept here).
 *  - Driver-level counter degradation (src/kgsl/defense.h): rate
 *    limiting, value quantization and noise injection, each run
 *    against the naive and the adapting attacker (the arena's grid).
 *
 * Machine-readable results mirror to BENCH_mitigations.json.
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "arena/matrix.h"
#include "attack/model_store.h"
#include "attack/trainer.h"
#include "bench_util.h"
#include "mitigation/obfuscation.h"
#include "workload/typist.h"

using namespace gpusc;
using namespace gpusc::sim_literals;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const int trials =
        argc > 1 ? std::atoi(argv[1]) : bench::kTrialsQuick;
    bench::banner("Section 9", "mitigation effectiveness");

    auto jnum = [](double v) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6f", v);
        return std::string(buf);
    };
    std::string json = "{\n  \"bench\": \"sec9_mitigations\",\n";

    // --- Baseline (no mitigation).
    {
        eval::ExperimentConfig cfg;
        cfg.seed = 2900;
        const auto stats = bench::accuracyCell(cfg, trials);
        Table t({"mitigation", "text accuracy", "key-press accuracy"});
        t.addRow({"none (stock Android)",
                  Table::pct(stats.textAccuracy()),
                  Table::pct(stats.charAccuracy())});
        t.print("baseline");
        json += "  \"baseline\": {\"text_accuracy\": " +
                jnum(stats.textAccuracy()) + ", \"key_accuracy\": " +
                jnum(stats.charAccuracy()) + "},\n";
    }

    // --- §9.1 Disabling popups: content gone, length still leaks.
    {
        android::DeviceConfig devCfg;
        devCfg.popupsDisabled = true;
        devCfg.notificationMeanInterval = SimTime();
        // Train on the *popup-enabled* config (the user disabled
        // popups on the victim device only).
        android::DeviceConfig trainCfg;
        const attack::OfflineTrainer trainer;
        const attack::SignatureModel &model =
            attack::ModelStore::global().getOrTrain(trainCfg, trainer);

        android::Device dev(devCfg);
        attack::Eavesdropper spy(dev, model);
        dev.boot();
        spy.start();
        dev.launchTargetApp();
        dev.runFor(1_s);

        const std::string secret = "correcthorse1";
        workload::Typist user(
            dev, workload::TypingModel::forVolunteer(2, 5), 77);
        bool done = false;
        user.type(secret, 200_ms, [&] { done = true; });
        while (!done)
            dev.runFor(100_ms);
        dev.runFor(1_s);

        Table t({"metric", "value"});
        t.addRow({"victim typed", secret});
        t.addRow({"content inferred", "'" + spy.inferredText() + "'"});
        t.addRow({"true input length", std::to_string(secret.size())});
        t.addRow({"length inferred from field echoes",
                  std::to_string(spy.maxObservedFieldLength())});
        t.print("\n9.1 popups disabled on the victim device");
    }

    // --- §9.2 RBAC via SELinux ioctl whitelisting.
    {
        android::DeviceConfig devCfg;
        const attack::OfflineTrainer trainer;
        const attack::SignatureModel &model =
            attack::ModelStore::global().getOrTrain(devCfg, trainer);
        android::Device dev(devCfg);
        const kgsl::RbacPolicy rbac;
        dev.setSecurityPolicy(rbac);

        attack::Eavesdropper spy(dev, model);
        dev.boot();
        const bool attackStarted = spy.start();

        // A legitimate profiler (whitelisted role) still works.
        const int profilerFd = attack::openAndReserveCounters(
            dev.kgsl(), kgsl::ProcessContext{50, "gpu_profiler"});

        Table t({"client", "SELinux role", "counter access"});
        t.addRow({"attacking app", "untrusted_app",
                  attackStarted ? "GRANTED (mitigation failed!)"
                                : "denied (EPERM)"});
        t.addRow({"GPU profiler", "gpu_profiler",
                  profilerFd >= 0 ? "granted" : "denied"});
        t.print("\n9.2 role-based access control on GPU PCs");
        if (profilerFd >= 0)
            dev.kgsl().close(profilerFd);
    }

    // --- §9.3 PNC-style login animation.
    {
        eval::ExperimentConfig cfg;
        cfg.device.app = "pnc";
        cfg.seed = 2950;
        const auto stats = bench::accuracyCell(cfg, trials);
        Table t({"target", "text accuracy", "key-press accuracy"});
        t.addRow({"PNC (animated login)",
                  Table::pct(stats.textAccuracy()),
                  Table::pct(stats.charAccuracy())});
        t.print("\n9.3 decorative login animation (paper: 30.2%)");
        json += "  \"pnc_animation\": {\"text_accuracy\": " +
                jnum(stats.textAccuracy()) + ", \"key_accuracy\": " +
                jnum(stats.charAccuracy()) + "},\n";
    }

    // --- §9.3 OS-level obfuscation sweep.
    {
        json += "  \"obfuscation_sweep\": [";
        bool firstRow = true;
        Table t({"injection period", "text accuracy",
                 "key-press accuracy", "GPU overhead"});
        for (double periodMs : {0.0, 500.0, 200.0, 80.0, 30.0}) {
            android::DeviceConfig devCfg;
            devCfg.seed = 2970 + int(periodMs);
            const attack::OfflineTrainer trainer;
            const attack::SignatureModel &model =
                attack::ModelStore::global().getOrTrain(devCfg,
                                                        trainer);
            android::Device dev(devCfg);
            attack::Eavesdropper spy(dev, model);
            dev.boot();
            spy.start();
            dev.launchTargetApp();

            mitigation::PcObfuscator::Params op;
            op.meanAreaFrac = 0.05;
            op.meanPeriod = SimTime::fromMs(std::int64_t(periodMs));
            mitigation::PcObfuscator obf(dev, op);
            if (periodMs > 0.0)
                obf.start();
            dev.runFor(1200_ms);

            workload::CredentialGenerator creds(devCfg.seed);
            workload::Typist user(
                dev,
                workload::TypingModel::forSpeed(
                    workload::TypingSpeed::Mixed, devCfg.seed),
                devCfg.seed + 1);
            eval::AccuracyStats stats;
            const SimTime sessionStart = dev.eq().now();
            for (int i = 0; i < trials / 2; ++i) {
                dev.app().clearText();
                dev.runFor(300_ms);
                const std::string text = creds.next(10);
                const SimTime t0 = dev.eq().now();
                bool done = false;
                user.type(text, 100_ms, [&] { done = true; });
                while (!done)
                    dev.runFor(100_ms);
                dev.runFor(600_ms);
                stats.add(text, spy.inferredTextBetween(
                                    t0, dev.eq().now()));
            }
            const double overhead =
                100.0 * double(obf.gpuTimeConsumed().ns()) /
                double((dev.eq().now() - sessionStart).ns());
            t.addRow({periodMs > 0 ? Table::num(periodMs, 0) + "ms"
                                   : "off",
                      Table::pct(stats.textAccuracy()),
                      Table::pct(stats.charAccuracy()),
                      Table::num(overhead, 1) + "%"});
            if (!firstRow)
                json += ",";
            firstRow = false;
            json += "\n    {\"period_ms\": " + jnum(periodMs) +
                    ", \"text_accuracy\": " +
                    jnum(stats.textAccuracy()) +
                    ", \"key_accuracy\": " +
                    jnum(stats.charAccuracy()) +
                    ", \"gpu_overhead_pct\": " + jnum(overhead) + "}";
        }
        json += "\n  ],\n";
        t.print("\n9.3 OS-injected random GPU workloads");
        std::printf("\nThe open question from the paper: accuracy "
                    "only falls once the injected workload is large "
                    "enough to routinely merge with popup frames — "
                    "at real GPU-time cost.\n");
    }

    // --- §9.4 (beyond the paper) driver-level counter degradation:
    // the arena's defense grid against both attacker modes, folded
    // into the mitigation story with defender-side cost.
    {
        arena::MatrixConfig mc;
        mc.base.seed = 2990;
        mc.trials = std::max(2, trials / 10);
        mc.minLen = 8;
        mc.maxLen = 10;
        const std::vector<arena::Cell> cells =
            arena::Matrix(mc).run(attack::ModelStore::global());
        std::printf("\n9.4 driver-level counter degradation "
                    "(kgsl defense stack)\n");
        arena::Matrix::printTable(cells);
        json += "  \"defense_cells\": " +
                arena::Matrix::cellsJson(cells) + "\n}";
    }

    bench::writeJsonMirror("BENCH_mitigations.json", json);
    std::printf("\nwrote BENCH_mitigations.json\n");
    return 0;
}
