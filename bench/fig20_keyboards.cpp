/**
 * @file
 * Figure 20: inference accuracy across six popular on-screen
 * keyboards on a OnePlus 8 Pro — different UI geometry means a
 * different trained model per keyboard, but accuracy stays within a
 * few percent.
 */

#include <cstdio>

#include "android/keyboard.h"
#include "bench_util.h"

using namespace gpusc;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const int trials =
        argc > 1 ? std::atoi(argv[1]) : bench::kTrialsQuick;
    bench::banner("Figure 20", "accuracy per on-screen keyboard (" +
                                   std::to_string(trials) +
                                   " texts each)");

    Table table({"keyboard", "text accuracy", "key-press accuracy",
                 "duplication prob"});
    double minText = 1.0, maxText = 0.0;
    for (const auto &kb : android::keyboardNames()) {
        eval::ExperimentConfig cfg;
        cfg.device.keyboard = kb;
        cfg.seed = 2000 + std::hash<std::string>{}(kb) % 89;
        const eval::AccuracyStats stats =
            bench::accuracyCell(cfg, trials);
        minText = std::min(minText, stats.textAccuracy());
        maxText = std::max(maxText, stats.textAccuracy());
        table.addRow(
            {kb, Table::pct(stats.textAccuracy()),
             Table::pct(stats.charAccuracy()),
             Table::num(android::keyboardSpec(kb).duplicationProb)});
    }
    table.print();
    std::printf("\nspread across keyboards: %.1f%% (paper: <5%% "
                "variation)\n",
                100.0 * (maxText - minText));
    return 0;
}
