/**
 * @file
 * Figure 23: impact of the counter-reading interval at 60 Hz and
 * 120 Hz refresh rates. Reading slower than roughly half the frame
 * interval merges separate frames' deltas and accuracy collapses.
 */

#include <cstdio>

#include "bench_util.h"

using namespace gpusc;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const int trials =
        argc > 1 ? std::atoi(argv[1]) : bench::kTrialsQuick;
    bench::banner("Figure 23",
                  "accuracy vs sampling interval x refresh rate (" +
                      std::to_string(trials) + " texts per cell)");

    Table table({"refresh", "interval", "key-press accuracy",
                 "text accuracy"});
    for (int hz : {60, 120}) {
        for (int intervalMs : {4, 8, 12}) {
            eval::ExperimentConfig cfg;
            cfg.device.refreshHz = hz;
            cfg.attackParams.samplingInterval =
                SimTime::fromMs(intervalMs);
            cfg.seed = 2300 + hz + intervalMs;
            const eval::AccuracyStats stats =
                bench::accuracyCell(cfg, trials);
            table.addRow({std::to_string(hz) + "Hz",
                          std::to_string(intervalMs) + "ms",
                          Table::pct(stats.charAccuracy()),
                          Table::pct(stats.textAccuracy())});
        }
    }
    table.print();
    std::printf("\nPaper: per-key accuracy >95%% throughout; text "
                "accuracy drops ~20%% at 12ms, and 120Hz needs <=4ms "
                "reads.\n");
    return 0;
}
