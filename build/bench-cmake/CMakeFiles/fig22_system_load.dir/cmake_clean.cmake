file(REMOVE_RECURSE
  "../bench/fig22_system_load"
  "../bench/fig22_system_load.pdb"
  "CMakeFiles/fig22_system_load.dir/fig22_system_load.cpp.o"
  "CMakeFiles/fig22_system_load.dir/fig22_system_load.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_system_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
