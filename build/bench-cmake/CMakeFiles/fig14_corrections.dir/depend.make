# Empty dependencies file for fig14_corrections.
# This may be replaced when dependencies are built.
