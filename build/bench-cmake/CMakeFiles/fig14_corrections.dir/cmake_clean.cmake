file(REMOVE_RECURSE
  "../bench/fig14_corrections"
  "../bench/fig14_corrections.pdb"
  "CMakeFiles/fig14_corrections.dir/fig14_corrections.cpp.o"
  "CMakeFiles/fig14_corrections.dir/fig14_corrections.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_corrections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
