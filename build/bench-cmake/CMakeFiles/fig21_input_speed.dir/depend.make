# Empty dependencies file for fig21_input_speed.
# This may be replaced when dependencies are built.
