file(REMOVE_RECURSE
  "../bench/fig21_input_speed"
  "../bench/fig21_input_speed.pdb"
  "CMakeFiles/fig21_input_speed.dir/fig21_input_speed.cpp.o"
  "CMakeFiles/fig21_input_speed.dir/fig21_input_speed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_input_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
