file(REMOVE_RECURSE
  "../bench/fig18_per_key"
  "../bench/fig18_per_key.pdb"
  "CMakeFiles/fig18_per_key.dir/fig18_per_key.cpp.o"
  "CMakeFiles/fig18_per_key.dir/fig18_per_key.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_per_key.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
