# Empty compiler generated dependencies file for fig18_per_key.
# This may be replaced when dependencies are built.
