# Empty dependencies file for fig26_power.
# This may be replaced when dependencies are built.
