file(REMOVE_RECURSE
  "../bench/fig26_power"
  "../bench/fig26_power.pdb"
  "CMakeFiles/fig26_power.dir/fig26_power.cpp.o"
  "CMakeFiles/fig26_power.dir/fig26_power.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig26_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
