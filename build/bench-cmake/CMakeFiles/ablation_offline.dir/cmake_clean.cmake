file(REMOVE_RECURSE
  "../bench/ablation_offline"
  "../bench/ablation_offline.pdb"
  "CMakeFiles/ablation_offline.dir/ablation_offline.cpp.o"
  "CMakeFiles/ablation_offline.dir/ablation_offline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
