# Empty dependencies file for ablation_offline.
# This may be replaced when dependencies are built.
