file(REMOVE_RECURSE
  "../bench/ablation_recognition"
  "../bench/ablation_recognition.pdb"
  "CMakeFiles/ablation_recognition.dir/ablation_recognition.cpp.o"
  "CMakeFiles/ablation_recognition.dir/ablation_recognition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
