# Empty dependencies file for ablation_recognition.
# This may be replaced when dependencies are built.
