# Empty dependencies file for fig27_28_practical.
# This may be replaced when dependencies are built.
