file(REMOVE_RECURSE
  "../bench/fig27_28_practical"
  "../bench/fig27_28_practical.pdb"
  "CMakeFiles/fig27_28_practical.dir/fig27_28_practical.cpp.o"
  "CMakeFiles/fig27_28_practical.dir/fig27_28_practical.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig27_28_practical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
