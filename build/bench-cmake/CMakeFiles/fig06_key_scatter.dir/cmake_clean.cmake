file(REMOVE_RECURSE
  "../bench/fig06_key_scatter"
  "../bench/fig06_key_scatter.pdb"
  "CMakeFiles/fig06_key_scatter.dir/fig06_key_scatter.cpp.o"
  "CMakeFiles/fig06_key_scatter.dir/fig06_key_scatter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_key_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
