# Empty dependencies file for fig06_key_scatter.
# This may be replaced when dependencies are built.
