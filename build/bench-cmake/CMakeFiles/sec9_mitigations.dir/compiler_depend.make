# Empty compiler generated dependencies file for sec9_mitigations.
# This may be replaced when dependencies are built.
