file(REMOVE_RECURSE
  "../bench/fig05_pc_trace"
  "../bench/fig05_pc_trace.pdb"
  "CMakeFiles/fig05_pc_trace.dir/fig05_pc_trace.cpp.o"
  "CMakeFiles/fig05_pc_trace.dir/fig05_pc_trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_pc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
