file(REMOVE_RECURSE
  "../bench/fig25_inference_time"
  "../bench/fig25_inference_time.pdb"
  "CMakeFiles/fig25_inference_time.dir/fig25_inference_time.cpp.o"
  "CMakeFiles/fig25_inference_time.dir/fig25_inference_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig25_inference_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
