# Empty dependencies file for fig25_inference_time.
# This may be replaced when dependencies are built.
