file(REMOVE_RECURSE
  "../bench/fig17_accuracy_length"
  "../bench/fig17_accuracy_length.pdb"
  "CMakeFiles/fig17_accuracy_length.dir/fig17_accuracy_length.cpp.o"
  "CMakeFiles/fig17_accuracy_length.dir/fig17_accuracy_length.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_accuracy_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
