
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig19_target_apps.cpp" "bench-cmake/CMakeFiles/fig19_target_apps.dir/fig19_target_apps.cpp.o" "gcc" "bench-cmake/CMakeFiles/fig19_target_apps.dir/fig19_target_apps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/gpusc_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/gpusc_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gpusc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/android/CMakeFiles/gpusc_android.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/gpusc_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/mitigation/CMakeFiles/gpusc_mitigation.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/gpusc_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/kgsl/CMakeFiles/gpusc_kgsl.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gpusc_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/gfx/CMakeFiles/gpusc_gfx.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpusc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
