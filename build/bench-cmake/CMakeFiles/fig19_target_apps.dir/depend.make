# Empty dependencies file for fig19_target_apps.
# This may be replaced when dependencies are built.
