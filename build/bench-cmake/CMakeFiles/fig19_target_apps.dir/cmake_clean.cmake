file(REMOVE_RECURSE
  "../bench/fig19_target_apps"
  "../bench/fig19_target_apps.pdb"
  "CMakeFiles/fig19_target_apps.dir/fig19_target_apps.cpp.o"
  "CMakeFiles/fig19_target_apps.dir/fig19_target_apps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_target_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
