# Empty dependencies file for fig13_app_switch.
# This may be replaced when dependencies are built.
