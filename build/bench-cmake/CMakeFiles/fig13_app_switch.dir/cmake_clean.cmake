file(REMOVE_RECURSE
  "../bench/fig13_app_switch"
  "../bench/fig13_app_switch.pdb"
  "CMakeFiles/fig13_app_switch.dir/fig13_app_switch.cpp.o"
  "CMakeFiles/fig13_app_switch.dir/fig13_app_switch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_app_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
