# Empty dependencies file for fig24_adaptability.
# This may be replaced when dependencies are built.
