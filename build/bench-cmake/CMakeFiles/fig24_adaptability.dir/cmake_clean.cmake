file(REMOVE_RECURSE
  "../bench/fig24_adaptability"
  "../bench/fig24_adaptability.pdb"
  "CMakeFiles/fig24_adaptability.dir/fig24_adaptability.cpp.o"
  "CMakeFiles/fig24_adaptability.dir/fig24_adaptability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_adaptability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
