# Empty dependencies file for fig23_sampling_interval.
# This may be replaced when dependencies are built.
