file(REMOVE_RECURSE
  "../bench/fig23_sampling_interval"
  "../bench/fig23_sampling_interval.pdb"
  "CMakeFiles/fig23_sampling_interval.dir/fig23_sampling_interval.cpp.o"
  "CMakeFiles/fig23_sampling_interval.dir/fig23_sampling_interval.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_sampling_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
