# Empty dependencies file for tab02_baseline.
# This may be replaced when dependencies are built.
