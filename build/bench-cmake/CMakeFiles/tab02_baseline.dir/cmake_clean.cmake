file(REMOVE_RECURSE
  "../bench/tab02_baseline"
  "../bench/tab02_baseline.pdb"
  "CMakeFiles/tab02_baseline.dir/tab02_baseline.cpp.o"
  "CMakeFiles/tab02_baseline.dir/tab02_baseline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
