# Empty dependencies file for fig16_typing_model.
# This may be replaced when dependencies are built.
