file(REMOVE_RECURSE
  "../bench/fig16_typing_model"
  "../bench/fig16_typing_model.pdb"
  "CMakeFiles/fig16_typing_model.dir/fig16_typing_model.cpp.o"
  "CMakeFiles/fig16_typing_model.dir/fig16_typing_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_typing_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
