file(REMOVE_RECURSE
  "../bench/fig20_keyboards"
  "../bench/fig20_keyboards.pdb"
  "CMakeFiles/fig20_keyboards.dir/fig20_keyboards.cpp.o"
  "CMakeFiles/fig20_keyboards.dir/fig20_keyboards.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_keyboards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
