# Empty dependencies file for fig20_keyboards.
# This may be replaced when dependencies are built.
