# Empty dependencies file for credential_theft.
# This may be replaced when dependencies are built.
