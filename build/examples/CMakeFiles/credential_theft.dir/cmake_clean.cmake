file(REMOVE_RECURSE
  "CMakeFiles/credential_theft.dir/credential_theft.cpp.o"
  "CMakeFiles/credential_theft.dir/credential_theft.cpp.o.d"
  "credential_theft"
  "credential_theft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/credential_theft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
