file(REMOVE_RECURSE
  "CMakeFiles/offline_training.dir/offline_training.cpp.o"
  "CMakeFiles/offline_training.dir/offline_training.cpp.o.d"
  "offline_training"
  "offline_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
