# Empty dependencies file for gfx_tests.
# This may be replaced when dependencies are built.
