file(REMOVE_RECURSE
  "CMakeFiles/gfx_tests.dir/gfx/font_test.cc.o"
  "CMakeFiles/gfx_tests.dir/gfx/font_test.cc.o.d"
  "CMakeFiles/gfx_tests.dir/gfx/geometry_test.cc.o"
  "CMakeFiles/gfx_tests.dir/gfx/geometry_test.cc.o.d"
  "CMakeFiles/gfx_tests.dir/gfx/scene_test.cc.o"
  "CMakeFiles/gfx_tests.dir/gfx/scene_test.cc.o.d"
  "gfx_tests"
  "gfx_tests.pdb"
  "gfx_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfx_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
