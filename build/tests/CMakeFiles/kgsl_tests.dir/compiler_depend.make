# Empty compiler generated dependencies file for kgsl_tests.
# This may be replaced when dependencies are built.
