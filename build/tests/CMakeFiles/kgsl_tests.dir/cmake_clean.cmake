file(REMOVE_RECURSE
  "CMakeFiles/kgsl_tests.dir/kgsl/device_test.cc.o"
  "CMakeFiles/kgsl_tests.dir/kgsl/device_test.cc.o.d"
  "CMakeFiles/kgsl_tests.dir/kgsl/policy_test.cc.o"
  "CMakeFiles/kgsl_tests.dir/kgsl/policy_test.cc.o.d"
  "kgsl_tests"
  "kgsl_tests.pdb"
  "kgsl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgsl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
