file(REMOVE_RECURSE
  "CMakeFiles/gpu_tests.dir/gpu/counters_test.cc.o"
  "CMakeFiles/gpu_tests.dir/gpu/counters_test.cc.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/model_test.cc.o"
  "CMakeFiles/gpu_tests.dir/gpu/model_test.cc.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/pipeline_property_test.cc.o"
  "CMakeFiles/gpu_tests.dir/gpu/pipeline_property_test.cc.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/pipeline_test.cc.o"
  "CMakeFiles/gpu_tests.dir/gpu/pipeline_test.cc.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/render_engine_test.cc.o"
  "CMakeFiles/gpu_tests.dir/gpu/render_engine_test.cc.o.d"
  "gpu_tests"
  "gpu_tests.pdb"
  "gpu_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
