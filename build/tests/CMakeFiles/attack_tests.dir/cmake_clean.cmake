file(REMOVE_RECURSE
  "CMakeFiles/attack_tests.dir/attack/cross_device_test.cc.o"
  "CMakeFiles/attack_tests.dir/attack/cross_device_test.cc.o.d"
  "CMakeFiles/attack_tests.dir/attack/detectors_test.cc.o"
  "CMakeFiles/attack_tests.dir/attack/detectors_test.cc.o.d"
  "CMakeFiles/attack_tests.dir/attack/end_to_end_test.cc.o"
  "CMakeFiles/attack_tests.dir/attack/end_to_end_test.cc.o.d"
  "CMakeFiles/attack_tests.dir/attack/launch_detector_test.cc.o"
  "CMakeFiles/attack_tests.dir/attack/launch_detector_test.cc.o.d"
  "CMakeFiles/attack_tests.dir/attack/model_store_test.cc.o"
  "CMakeFiles/attack_tests.dir/attack/model_store_test.cc.o.d"
  "CMakeFiles/attack_tests.dir/attack/online_inference_test.cc.o"
  "CMakeFiles/attack_tests.dir/attack/online_inference_test.cc.o.d"
  "CMakeFiles/attack_tests.dir/attack/sampler_test.cc.o"
  "CMakeFiles/attack_tests.dir/attack/sampler_test.cc.o.d"
  "CMakeFiles/attack_tests.dir/attack/signature_test.cc.o"
  "CMakeFiles/attack_tests.dir/attack/signature_test.cc.o.d"
  "CMakeFiles/attack_tests.dir/attack/trace_inference_test.cc.o"
  "CMakeFiles/attack_tests.dir/attack/trace_inference_test.cc.o.d"
  "attack_tests"
  "attack_tests.pdb"
  "attack_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
