file(REMOVE_RECURSE
  "CMakeFiles/evalmisc_tests.dir/eval/experiment_test.cc.o"
  "CMakeFiles/evalmisc_tests.dir/eval/experiment_test.cc.o.d"
  "CMakeFiles/evalmisc_tests.dir/eval/metrics_property_test.cc.o"
  "CMakeFiles/evalmisc_tests.dir/eval/metrics_property_test.cc.o.d"
  "CMakeFiles/evalmisc_tests.dir/eval/metrics_test.cc.o"
  "CMakeFiles/evalmisc_tests.dir/eval/metrics_test.cc.o.d"
  "CMakeFiles/evalmisc_tests.dir/misc/baseline_mitigation_test.cc.o"
  "CMakeFiles/evalmisc_tests.dir/misc/baseline_mitigation_test.cc.o.d"
  "evalmisc_tests"
  "evalmisc_tests.pdb"
  "evalmisc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evalmisc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
