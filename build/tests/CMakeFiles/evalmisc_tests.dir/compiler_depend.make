# Empty compiler generated dependencies file for evalmisc_tests.
# This may be replaced when dependencies are built.
