# Empty compiler generated dependencies file for android_tests.
# This may be replaced when dependencies are built.
