file(REMOVE_RECURSE
  "CMakeFiles/android_tests.dir/android/app_test.cc.o"
  "CMakeFiles/android_tests.dir/android/app_test.cc.o.d"
  "CMakeFiles/android_tests.dir/android/device_test.cc.o"
  "CMakeFiles/android_tests.dir/android/device_test.cc.o.d"
  "CMakeFiles/android_tests.dir/android/gles_local_test.cc.o"
  "CMakeFiles/android_tests.dir/android/gles_local_test.cc.o.d"
  "CMakeFiles/android_tests.dir/android/ime_test.cc.o"
  "CMakeFiles/android_tests.dir/android/ime_test.cc.o.d"
  "CMakeFiles/android_tests.dir/android/input_test.cc.o"
  "CMakeFiles/android_tests.dir/android/input_test.cc.o.d"
  "CMakeFiles/android_tests.dir/android/keyboard_test.cc.o"
  "CMakeFiles/android_tests.dir/android/keyboard_test.cc.o.d"
  "CMakeFiles/android_tests.dir/android/misc_test.cc.o"
  "CMakeFiles/android_tests.dir/android/misc_test.cc.o.d"
  "CMakeFiles/android_tests.dir/android/surface_test.cc.o"
  "CMakeFiles/android_tests.dir/android/surface_test.cc.o.d"
  "CMakeFiles/android_tests.dir/android/window_manager_test.cc.o"
  "CMakeFiles/android_tests.dir/android/window_manager_test.cc.o.d"
  "android_tests"
  "android_tests.pdb"
  "android_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/android_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
