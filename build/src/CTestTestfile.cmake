# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("gfx")
subdirs("gpu")
subdirs("kgsl")
subdirs("ml")
subdirs("android")
subdirs("workload")
subdirs("attack")
subdirs("baseline")
subdirs("mitigation")
subdirs("eval")
