# Empty compiler generated dependencies file for gpusc_ml.
# This may be replaced when dependencies are built.
