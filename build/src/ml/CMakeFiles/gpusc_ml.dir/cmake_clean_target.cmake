file(REMOVE_RECURSE
  "libgpusc_ml.a"
)
