file(REMOVE_RECURSE
  "CMakeFiles/gpusc_ml.dir/classifier.cc.o"
  "CMakeFiles/gpusc_ml.dir/classifier.cc.o.d"
  "CMakeFiles/gpusc_ml.dir/knn.cc.o"
  "CMakeFiles/gpusc_ml.dir/knn.cc.o.d"
  "CMakeFiles/gpusc_ml.dir/naive_bayes.cc.o"
  "CMakeFiles/gpusc_ml.dir/naive_bayes.cc.o.d"
  "CMakeFiles/gpusc_ml.dir/nearest_centroid.cc.o"
  "CMakeFiles/gpusc_ml.dir/nearest_centroid.cc.o.d"
  "CMakeFiles/gpusc_ml.dir/random_forest.cc.o"
  "CMakeFiles/gpusc_ml.dir/random_forest.cc.o.d"
  "libgpusc_ml.a"
  "libgpusc_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusc_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
