
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/classifier.cc" "src/ml/CMakeFiles/gpusc_ml.dir/classifier.cc.o" "gcc" "src/ml/CMakeFiles/gpusc_ml.dir/classifier.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/gpusc_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/gpusc_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/ml/CMakeFiles/gpusc_ml.dir/naive_bayes.cc.o" "gcc" "src/ml/CMakeFiles/gpusc_ml.dir/naive_bayes.cc.o.d"
  "/root/repo/src/ml/nearest_centroid.cc" "src/ml/CMakeFiles/gpusc_ml.dir/nearest_centroid.cc.o" "gcc" "src/ml/CMakeFiles/gpusc_ml.dir/nearest_centroid.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/ml/CMakeFiles/gpusc_ml.dir/random_forest.cc.o" "gcc" "src/ml/CMakeFiles/gpusc_ml.dir/random_forest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gpusc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
