file(REMOVE_RECURSE
  "libgpusc_workload.a"
)
