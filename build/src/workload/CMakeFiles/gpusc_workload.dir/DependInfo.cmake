
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/credential.cc" "src/workload/CMakeFiles/gpusc_workload.dir/credential.cc.o" "gcc" "src/workload/CMakeFiles/gpusc_workload.dir/credential.cc.o.d"
  "/root/repo/src/workload/load.cc" "src/workload/CMakeFiles/gpusc_workload.dir/load.cc.o" "gcc" "src/workload/CMakeFiles/gpusc_workload.dir/load.cc.o.d"
  "/root/repo/src/workload/session.cc" "src/workload/CMakeFiles/gpusc_workload.dir/session.cc.o" "gcc" "src/workload/CMakeFiles/gpusc_workload.dir/session.cc.o.d"
  "/root/repo/src/workload/typing_model.cc" "src/workload/CMakeFiles/gpusc_workload.dir/typing_model.cc.o" "gcc" "src/workload/CMakeFiles/gpusc_workload.dir/typing_model.cc.o.d"
  "/root/repo/src/workload/typist.cc" "src/workload/CMakeFiles/gpusc_workload.dir/typist.cc.o" "gcc" "src/workload/CMakeFiles/gpusc_workload.dir/typist.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/android/CMakeFiles/gpusc_android.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpusc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/kgsl/CMakeFiles/gpusc_kgsl.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gpusc_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/gfx/CMakeFiles/gpusc_gfx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
