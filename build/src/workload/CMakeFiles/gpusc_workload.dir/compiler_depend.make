# Empty compiler generated dependencies file for gpusc_workload.
# This may be replaced when dependencies are built.
