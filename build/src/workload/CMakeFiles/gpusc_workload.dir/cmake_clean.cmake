file(REMOVE_RECURSE
  "CMakeFiles/gpusc_workload.dir/credential.cc.o"
  "CMakeFiles/gpusc_workload.dir/credential.cc.o.d"
  "CMakeFiles/gpusc_workload.dir/load.cc.o"
  "CMakeFiles/gpusc_workload.dir/load.cc.o.d"
  "CMakeFiles/gpusc_workload.dir/session.cc.o"
  "CMakeFiles/gpusc_workload.dir/session.cc.o.d"
  "CMakeFiles/gpusc_workload.dir/typing_model.cc.o"
  "CMakeFiles/gpusc_workload.dir/typing_model.cc.o.d"
  "CMakeFiles/gpusc_workload.dir/typist.cc.o"
  "CMakeFiles/gpusc_workload.dir/typist.cc.o.d"
  "libgpusc_workload.a"
  "libgpusc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
