file(REMOVE_RECURSE
  "libgpusc_android.a"
)
