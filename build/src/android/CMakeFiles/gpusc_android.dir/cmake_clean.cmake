file(REMOVE_RECURSE
  "CMakeFiles/gpusc_android.dir/app.cc.o"
  "CMakeFiles/gpusc_android.dir/app.cc.o.d"
  "CMakeFiles/gpusc_android.dir/device.cc.o"
  "CMakeFiles/gpusc_android.dir/device.cc.o.d"
  "CMakeFiles/gpusc_android.dir/display.cc.o"
  "CMakeFiles/gpusc_android.dir/display.cc.o.d"
  "CMakeFiles/gpusc_android.dir/gles.cc.o"
  "CMakeFiles/gpusc_android.dir/gles.cc.o.d"
  "CMakeFiles/gpusc_android.dir/ime.cc.o"
  "CMakeFiles/gpusc_android.dir/ime.cc.o.d"
  "CMakeFiles/gpusc_android.dir/input.cc.o"
  "CMakeFiles/gpusc_android.dir/input.cc.o.d"
  "CMakeFiles/gpusc_android.dir/keyboard.cc.o"
  "CMakeFiles/gpusc_android.dir/keyboard.cc.o.d"
  "CMakeFiles/gpusc_android.dir/other_app.cc.o"
  "CMakeFiles/gpusc_android.dir/other_app.cc.o.d"
  "CMakeFiles/gpusc_android.dir/phone.cc.o"
  "CMakeFiles/gpusc_android.dir/phone.cc.o.d"
  "CMakeFiles/gpusc_android.dir/power.cc.o"
  "CMakeFiles/gpusc_android.dir/power.cc.o.d"
  "CMakeFiles/gpusc_android.dir/status_bar.cc.o"
  "CMakeFiles/gpusc_android.dir/status_bar.cc.o.d"
  "CMakeFiles/gpusc_android.dir/surface.cc.o"
  "CMakeFiles/gpusc_android.dir/surface.cc.o.d"
  "CMakeFiles/gpusc_android.dir/window_manager.cc.o"
  "CMakeFiles/gpusc_android.dir/window_manager.cc.o.d"
  "libgpusc_android.a"
  "libgpusc_android.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusc_android.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
