
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/android/app.cc" "src/android/CMakeFiles/gpusc_android.dir/app.cc.o" "gcc" "src/android/CMakeFiles/gpusc_android.dir/app.cc.o.d"
  "/root/repo/src/android/device.cc" "src/android/CMakeFiles/gpusc_android.dir/device.cc.o" "gcc" "src/android/CMakeFiles/gpusc_android.dir/device.cc.o.d"
  "/root/repo/src/android/display.cc" "src/android/CMakeFiles/gpusc_android.dir/display.cc.o" "gcc" "src/android/CMakeFiles/gpusc_android.dir/display.cc.o.d"
  "/root/repo/src/android/gles.cc" "src/android/CMakeFiles/gpusc_android.dir/gles.cc.o" "gcc" "src/android/CMakeFiles/gpusc_android.dir/gles.cc.o.d"
  "/root/repo/src/android/ime.cc" "src/android/CMakeFiles/gpusc_android.dir/ime.cc.o" "gcc" "src/android/CMakeFiles/gpusc_android.dir/ime.cc.o.d"
  "/root/repo/src/android/input.cc" "src/android/CMakeFiles/gpusc_android.dir/input.cc.o" "gcc" "src/android/CMakeFiles/gpusc_android.dir/input.cc.o.d"
  "/root/repo/src/android/keyboard.cc" "src/android/CMakeFiles/gpusc_android.dir/keyboard.cc.o" "gcc" "src/android/CMakeFiles/gpusc_android.dir/keyboard.cc.o.d"
  "/root/repo/src/android/other_app.cc" "src/android/CMakeFiles/gpusc_android.dir/other_app.cc.o" "gcc" "src/android/CMakeFiles/gpusc_android.dir/other_app.cc.o.d"
  "/root/repo/src/android/phone.cc" "src/android/CMakeFiles/gpusc_android.dir/phone.cc.o" "gcc" "src/android/CMakeFiles/gpusc_android.dir/phone.cc.o.d"
  "/root/repo/src/android/power.cc" "src/android/CMakeFiles/gpusc_android.dir/power.cc.o" "gcc" "src/android/CMakeFiles/gpusc_android.dir/power.cc.o.d"
  "/root/repo/src/android/status_bar.cc" "src/android/CMakeFiles/gpusc_android.dir/status_bar.cc.o" "gcc" "src/android/CMakeFiles/gpusc_android.dir/status_bar.cc.o.d"
  "/root/repo/src/android/surface.cc" "src/android/CMakeFiles/gpusc_android.dir/surface.cc.o" "gcc" "src/android/CMakeFiles/gpusc_android.dir/surface.cc.o.d"
  "/root/repo/src/android/window_manager.cc" "src/android/CMakeFiles/gpusc_android.dir/window_manager.cc.o" "gcc" "src/android/CMakeFiles/gpusc_android.dir/window_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kgsl/CMakeFiles/gpusc_kgsl.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gpusc_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/gfx/CMakeFiles/gpusc_gfx.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpusc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
