# Empty dependencies file for gpusc_android.
# This may be replaced when dependencies are built.
