file(REMOVE_RECURSE
  "libgpusc_eval.a"
)
