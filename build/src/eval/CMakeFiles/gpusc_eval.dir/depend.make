# Empty dependencies file for gpusc_eval.
# This may be replaced when dependencies are built.
