file(REMOVE_RECURSE
  "CMakeFiles/gpusc_eval.dir/experiment.cc.o"
  "CMakeFiles/gpusc_eval.dir/experiment.cc.o.d"
  "CMakeFiles/gpusc_eval.dir/metrics.cc.o"
  "CMakeFiles/gpusc_eval.dir/metrics.cc.o.d"
  "libgpusc_eval.a"
  "libgpusc_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusc_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
