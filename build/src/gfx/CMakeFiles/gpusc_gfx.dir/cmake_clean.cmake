file(REMOVE_RECURSE
  "CMakeFiles/gpusc_gfx.dir/font.cc.o"
  "CMakeFiles/gpusc_gfx.dir/font.cc.o.d"
  "CMakeFiles/gpusc_gfx.dir/geometry.cc.o"
  "CMakeFiles/gpusc_gfx.dir/geometry.cc.o.d"
  "CMakeFiles/gpusc_gfx.dir/scene.cc.o"
  "CMakeFiles/gpusc_gfx.dir/scene.cc.o.d"
  "libgpusc_gfx.a"
  "libgpusc_gfx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusc_gfx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
