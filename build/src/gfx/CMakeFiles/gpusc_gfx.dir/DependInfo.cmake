
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gfx/font.cc" "src/gfx/CMakeFiles/gpusc_gfx.dir/font.cc.o" "gcc" "src/gfx/CMakeFiles/gpusc_gfx.dir/font.cc.o.d"
  "/root/repo/src/gfx/geometry.cc" "src/gfx/CMakeFiles/gpusc_gfx.dir/geometry.cc.o" "gcc" "src/gfx/CMakeFiles/gpusc_gfx.dir/geometry.cc.o.d"
  "/root/repo/src/gfx/scene.cc" "src/gfx/CMakeFiles/gpusc_gfx.dir/scene.cc.o" "gcc" "src/gfx/CMakeFiles/gpusc_gfx.dir/scene.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gpusc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
