# Empty compiler generated dependencies file for gpusc_gfx.
# This may be replaced when dependencies are built.
