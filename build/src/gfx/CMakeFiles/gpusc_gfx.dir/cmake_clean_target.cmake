file(REMOVE_RECURSE
  "libgpusc_gfx.a"
)
