file(REMOVE_RECURSE
  "CMakeFiles/gpusc_util.dir/event_queue.cc.o"
  "CMakeFiles/gpusc_util.dir/event_queue.cc.o.d"
  "CMakeFiles/gpusc_util.dir/logging.cc.o"
  "CMakeFiles/gpusc_util.dir/logging.cc.o.d"
  "CMakeFiles/gpusc_util.dir/rng.cc.o"
  "CMakeFiles/gpusc_util.dir/rng.cc.o.d"
  "CMakeFiles/gpusc_util.dir/sim_time.cc.o"
  "CMakeFiles/gpusc_util.dir/sim_time.cc.o.d"
  "CMakeFiles/gpusc_util.dir/stats.cc.o"
  "CMakeFiles/gpusc_util.dir/stats.cc.o.d"
  "CMakeFiles/gpusc_util.dir/table.cc.o"
  "CMakeFiles/gpusc_util.dir/table.cc.o.d"
  "libgpusc_util.a"
  "libgpusc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
