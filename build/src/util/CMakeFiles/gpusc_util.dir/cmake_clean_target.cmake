file(REMOVE_RECURSE
  "libgpusc_util.a"
)
