# Empty dependencies file for gpusc_util.
# This may be replaced when dependencies are built.
