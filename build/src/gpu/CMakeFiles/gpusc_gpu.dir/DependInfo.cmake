
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/counters.cc" "src/gpu/CMakeFiles/gpusc_gpu.dir/counters.cc.o" "gcc" "src/gpu/CMakeFiles/gpusc_gpu.dir/counters.cc.o.d"
  "/root/repo/src/gpu/model.cc" "src/gpu/CMakeFiles/gpusc_gpu.dir/model.cc.o" "gcc" "src/gpu/CMakeFiles/gpusc_gpu.dir/model.cc.o.d"
  "/root/repo/src/gpu/pipeline.cc" "src/gpu/CMakeFiles/gpusc_gpu.dir/pipeline.cc.o" "gcc" "src/gpu/CMakeFiles/gpusc_gpu.dir/pipeline.cc.o.d"
  "/root/repo/src/gpu/render_engine.cc" "src/gpu/CMakeFiles/gpusc_gpu.dir/render_engine.cc.o" "gcc" "src/gpu/CMakeFiles/gpusc_gpu.dir/render_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gfx/CMakeFiles/gpusc_gfx.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpusc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
