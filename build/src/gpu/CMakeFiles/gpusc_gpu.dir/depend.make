# Empty dependencies file for gpusc_gpu.
# This may be replaced when dependencies are built.
