file(REMOVE_RECURSE
  "libgpusc_gpu.a"
)
