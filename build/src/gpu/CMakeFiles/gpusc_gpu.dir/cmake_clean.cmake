file(REMOVE_RECURSE
  "CMakeFiles/gpusc_gpu.dir/counters.cc.o"
  "CMakeFiles/gpusc_gpu.dir/counters.cc.o.d"
  "CMakeFiles/gpusc_gpu.dir/model.cc.o"
  "CMakeFiles/gpusc_gpu.dir/model.cc.o.d"
  "CMakeFiles/gpusc_gpu.dir/pipeline.cc.o"
  "CMakeFiles/gpusc_gpu.dir/pipeline.cc.o.d"
  "CMakeFiles/gpusc_gpu.dir/render_engine.cc.o"
  "CMakeFiles/gpusc_gpu.dir/render_engine.cc.o.d"
  "libgpusc_gpu.a"
  "libgpusc_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusc_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
