
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/desktop_baseline.cc" "src/baseline/CMakeFiles/gpusc_baseline.dir/desktop_baseline.cc.o" "gcc" "src/baseline/CMakeFiles/gpusc_baseline.dir/desktop_baseline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/gpusc_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/gfx/CMakeFiles/gpusc_gfx.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpusc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
