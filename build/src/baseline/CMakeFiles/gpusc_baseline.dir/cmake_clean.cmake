file(REMOVE_RECURSE
  "CMakeFiles/gpusc_baseline.dir/desktop_baseline.cc.o"
  "CMakeFiles/gpusc_baseline.dir/desktop_baseline.cc.o.d"
  "libgpusc_baseline.a"
  "libgpusc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
