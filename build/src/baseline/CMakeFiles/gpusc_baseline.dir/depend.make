# Empty dependencies file for gpusc_baseline.
# This may be replaced when dependencies are built.
