file(REMOVE_RECURSE
  "libgpusc_baseline.a"
)
