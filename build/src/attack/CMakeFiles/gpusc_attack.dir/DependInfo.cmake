
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/app_switch_detector.cc" "src/attack/CMakeFiles/gpusc_attack.dir/app_switch_detector.cc.o" "gcc" "src/attack/CMakeFiles/gpusc_attack.dir/app_switch_detector.cc.o.d"
  "/root/repo/src/attack/correction_tracker.cc" "src/attack/CMakeFiles/gpusc_attack.dir/correction_tracker.cc.o" "gcc" "src/attack/CMakeFiles/gpusc_attack.dir/correction_tracker.cc.o.d"
  "/root/repo/src/attack/eavesdropper.cc" "src/attack/CMakeFiles/gpusc_attack.dir/eavesdropper.cc.o" "gcc" "src/attack/CMakeFiles/gpusc_attack.dir/eavesdropper.cc.o.d"
  "/root/repo/src/attack/launch_detector.cc" "src/attack/CMakeFiles/gpusc_attack.dir/launch_detector.cc.o" "gcc" "src/attack/CMakeFiles/gpusc_attack.dir/launch_detector.cc.o.d"
  "/root/repo/src/attack/model_store.cc" "src/attack/CMakeFiles/gpusc_attack.dir/model_store.cc.o" "gcc" "src/attack/CMakeFiles/gpusc_attack.dir/model_store.cc.o.d"
  "/root/repo/src/attack/online_inference.cc" "src/attack/CMakeFiles/gpusc_attack.dir/online_inference.cc.o" "gcc" "src/attack/CMakeFiles/gpusc_attack.dir/online_inference.cc.o.d"
  "/root/repo/src/attack/sampler.cc" "src/attack/CMakeFiles/gpusc_attack.dir/sampler.cc.o" "gcc" "src/attack/CMakeFiles/gpusc_attack.dir/sampler.cc.o.d"
  "/root/repo/src/attack/signature.cc" "src/attack/CMakeFiles/gpusc_attack.dir/signature.cc.o" "gcc" "src/attack/CMakeFiles/gpusc_attack.dir/signature.cc.o.d"
  "/root/repo/src/attack/trace_inference.cc" "src/attack/CMakeFiles/gpusc_attack.dir/trace_inference.cc.o" "gcc" "src/attack/CMakeFiles/gpusc_attack.dir/trace_inference.cc.o.d"
  "/root/repo/src/attack/trainer.cc" "src/attack/CMakeFiles/gpusc_attack.dir/trainer.cc.o" "gcc" "src/attack/CMakeFiles/gpusc_attack.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/android/CMakeFiles/gpusc_android.dir/DependInfo.cmake"
  "/root/repo/build/src/kgsl/CMakeFiles/gpusc_kgsl.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gpusc_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/gpusc_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpusc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gfx/CMakeFiles/gpusc_gfx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
