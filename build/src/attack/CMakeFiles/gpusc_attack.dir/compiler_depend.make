# Empty compiler generated dependencies file for gpusc_attack.
# This may be replaced when dependencies are built.
