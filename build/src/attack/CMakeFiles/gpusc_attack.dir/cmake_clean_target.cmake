file(REMOVE_RECURSE
  "libgpusc_attack.a"
)
