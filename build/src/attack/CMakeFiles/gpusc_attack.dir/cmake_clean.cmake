file(REMOVE_RECURSE
  "CMakeFiles/gpusc_attack.dir/app_switch_detector.cc.o"
  "CMakeFiles/gpusc_attack.dir/app_switch_detector.cc.o.d"
  "CMakeFiles/gpusc_attack.dir/correction_tracker.cc.o"
  "CMakeFiles/gpusc_attack.dir/correction_tracker.cc.o.d"
  "CMakeFiles/gpusc_attack.dir/eavesdropper.cc.o"
  "CMakeFiles/gpusc_attack.dir/eavesdropper.cc.o.d"
  "CMakeFiles/gpusc_attack.dir/launch_detector.cc.o"
  "CMakeFiles/gpusc_attack.dir/launch_detector.cc.o.d"
  "CMakeFiles/gpusc_attack.dir/model_store.cc.o"
  "CMakeFiles/gpusc_attack.dir/model_store.cc.o.d"
  "CMakeFiles/gpusc_attack.dir/online_inference.cc.o"
  "CMakeFiles/gpusc_attack.dir/online_inference.cc.o.d"
  "CMakeFiles/gpusc_attack.dir/sampler.cc.o"
  "CMakeFiles/gpusc_attack.dir/sampler.cc.o.d"
  "CMakeFiles/gpusc_attack.dir/signature.cc.o"
  "CMakeFiles/gpusc_attack.dir/signature.cc.o.d"
  "CMakeFiles/gpusc_attack.dir/trace_inference.cc.o"
  "CMakeFiles/gpusc_attack.dir/trace_inference.cc.o.d"
  "CMakeFiles/gpusc_attack.dir/trainer.cc.o"
  "CMakeFiles/gpusc_attack.dir/trainer.cc.o.d"
  "libgpusc_attack.a"
  "libgpusc_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusc_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
