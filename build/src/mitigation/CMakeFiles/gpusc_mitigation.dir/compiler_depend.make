# Empty compiler generated dependencies file for gpusc_mitigation.
# This may be replaced when dependencies are built.
