file(REMOVE_RECURSE
  "libgpusc_mitigation.a"
)
