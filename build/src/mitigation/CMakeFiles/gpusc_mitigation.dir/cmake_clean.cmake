file(REMOVE_RECURSE
  "CMakeFiles/gpusc_mitigation.dir/obfuscation.cc.o"
  "CMakeFiles/gpusc_mitigation.dir/obfuscation.cc.o.d"
  "libgpusc_mitigation.a"
  "libgpusc_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusc_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
