file(REMOVE_RECURSE
  "CMakeFiles/gpusc_kgsl.dir/device.cc.o"
  "CMakeFiles/gpusc_kgsl.dir/device.cc.o.d"
  "CMakeFiles/gpusc_kgsl.dir/policy.cc.o"
  "CMakeFiles/gpusc_kgsl.dir/policy.cc.o.d"
  "libgpusc_kgsl.a"
  "libgpusc_kgsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusc_kgsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
