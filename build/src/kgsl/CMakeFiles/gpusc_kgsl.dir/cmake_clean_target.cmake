file(REMOVE_RECURSE
  "libgpusc_kgsl.a"
)
