
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kgsl/device.cc" "src/kgsl/CMakeFiles/gpusc_kgsl.dir/device.cc.o" "gcc" "src/kgsl/CMakeFiles/gpusc_kgsl.dir/device.cc.o.d"
  "/root/repo/src/kgsl/policy.cc" "src/kgsl/CMakeFiles/gpusc_kgsl.dir/policy.cc.o" "gcc" "src/kgsl/CMakeFiles/gpusc_kgsl.dir/policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/gpusc_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpusc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gfx/CMakeFiles/gpusc_gfx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
