# Empty compiler generated dependencies file for gpusc_kgsl.
# This may be replaced when dependencies are built.
