/**
 * @file
 * gpusc_lint CLI.
 *
 *   gpusc_lint --root <repo> [--json <out.json>]
 *              [--baseline <baseline.json>]
 *              [--require-empty-baseline] [--quiet]
 *
 * Scans src/, examples/, bench/ and tools/ under --root, runs the
 * determinism & hygiene rules (see rules.h), applies inline
 * suppressions and the checked-in baseline, prints the human table
 * and optionally writes the JSON document. Exit status: 0 on a
 * clean tree, 1 when there are active findings (or when
 * --require-empty-baseline is set and the baseline is non-empty),
 * 2 on usage or I/O errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "findings.h"
#include "rules.h"
#include "scan.h"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--root DIR] [--json PATH] [--baseline PATH]\n"
        "          [--require-empty-baseline] [--quiet]\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gpusc::lint;

    std::string root = ".";
    std::string jsonOut;
    std::string baselinePath;
    bool requireEmptyBaseline = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](std::string &dst) {
            if (i + 1 >= argc)
                return false;
            dst = argv[++i];
            return true;
        };
        if (arg == "--root") {
            if (!value(root))
                return usage(argv[0]);
        } else if (arg == "--json") {
            if (!value(jsonOut))
                return usage(argv[0]);
        } else if (arg == "--baseline") {
            if (!value(baselinePath))
                return usage(argv[0]);
        } else if (arg == "--require-empty-baseline") {
            requireEmptyBaseline = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            return usage(argv[0]);
        }
    }

    const std::vector<SourceFile> files = scanTree(root);
    if (files.empty()) {
        std::fprintf(stderr,
                     "gpusc_lint: no sources found under %s\n",
                     root.c_str());
        return 2;
    }

    std::vector<Finding> findings = runRules(files);

    std::vector<BaselineEntry> baseline;
    std::vector<Finding> baselined;
    if (!baselinePath.empty()) {
        if (!loadBaseline(baselinePath, baseline,
                          /*missingOk=*/false)) {
            std::fprintf(stderr,
                         "gpusc_lint: cannot parse baseline %s\n",
                         baselinePath.c_str());
            return 2;
        }
        applyBaseline(baseline, findings, baselined);
    }

    if (!jsonOut.empty()) {
        std::ofstream out(jsonOut, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "gpusc_lint: cannot write %s\n",
                         jsonOut.c_str());
            return 2;
        }
        out << renderJson(findings, baselined);
    }

    if (!quiet) {
        std::fputs(renderTable(findings).c_str(), stdout);
        if (!baselined.empty())
            std::fprintf(stderr,
                         "gpusc_lint: %zu finding(s) hidden by the "
                         "baseline — it must be empty at merge\n",
                         baselined.size());
    }

    if (requireEmptyBaseline && !baseline.empty()) {
        std::fprintf(stderr,
                     "gpusc_lint: baseline %s has %zu entries but "
                     "--require-empty-baseline is set\n",
                     baselinePath.c_str(), baseline.size());
        return 1;
    }
    return findings.empty() ? 0 : 1;
}
