#include "lexer.h"

#include <cctype>

namespace gpusc::lint {

namespace {

/** Multi-character operators, longest first within a leading char. */
const char *const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "<=>", "::", "->", "++", "--", "<<",
    ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=",
    "/=",  "%=", "&=", "|=", "^=", "##",
};

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identCont(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Source cursor that resolves backslash-newline splices and tracks
 *  line/column as it advances. */
class Cursor
{
  public:
    explicit Cursor(const std::string &s) : s_(s) {}

    bool done() const { return pos_ >= s_.size(); }

    char
    peek(std::size_t ahead = 0) const
    {
        std::size_t p = pos_;
        // Skip any splice sequences between here and the requested
        // character so lookahead sees the logical source.
        std::size_t left = ahead;
        while (p < s_.size()) {
            if (spliceLen(p) > 0) {
                p += spliceLen(p);
                continue;
            }
            if (left == 0)
                return s_[p];
            --left;
            ++p;
        }
        return '\0';
    }

    char
    next()
    {
        while (spliceLen(pos_) > 0) {
            pos_ += spliceLen(pos_);
            ++line_;
            col_ = 1;
        }
        if (done())
            return '\0';
        const char c = s_[pos_++];
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }

    int line() const { return line_; }
    int column() const { return col_; }

  private:
    /** Length of a backslash-newline splice at @p p (0 if none). */
    std::size_t
    spliceLen(std::size_t p) const
    {
        if (p + 1 < s_.size() && s_[p] == '\\' && s_[p + 1] == '\n')
            return 2;
        if (p + 2 < s_.size() && s_[p] == '\\' && s_[p + 1] == '\r' &&
            s_[p + 2] == '\n')
            return 3;
        return 0;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
};

} // namespace

bool
isFloatLiteral(const std::string &t)
{
    if (t.size() > 1 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X'))
        return t.find('p') != std::string::npos ||
               t.find('P') != std::string::npos;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const char c = t[i];
        if (c == '.' || c == 'e' || c == 'E')
            return true;
        // 1f / 1.0f suffix (but not the 0xf of a hex literal,
        // handled above).
        if ((c == 'f' || c == 'F') && i == t.size() - 1)
            return true;
    }
    return false;
}

LexedSource
lex(const std::string &source)
{
    LexedSource out;

    // Raw line table (suppressions and guard checks read this).
    std::string cur;
    for (char c : source) {
        if (c == '\n') {
            if (!cur.empty() && cur.back() == '\r')
                cur.pop_back();
            out.lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.lines.push_back(cur);

    Cursor in(source);
    while (!in.done()) {
        const char c = in.peek();
        if (c == '\0')
            break;
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r' ||
            c == '\f' || c == '\v') {
            in.next();
            continue;
        }

        const int line = in.line();
        const int col = in.column();

        // Comments.
        if (c == '/' && in.peek(1) == '/') {
            in.next();
            in.next();
            Comment cm;
            cm.line = line;
            while (!in.done() && in.peek() != '\n')
                cm.text += in.next();
            cm.endLine = in.line();
            out.comments.push_back(std::move(cm));
            continue;
        }
        if (c == '/' && in.peek(1) == '*') {
            in.next();
            in.next();
            Comment cm;
            cm.line = line;
            while (!in.done() &&
                   !(in.peek() == '*' && in.peek(1) == '/'))
                cm.text += in.next();
            if (!in.done()) {
                in.next();
                in.next();
            }
            cm.endLine = in.line();
            out.comments.push_back(std::move(cm));
            continue;
        }

        // Raw string literal: R"delim( ... )delim".
        if (c == 'R' && in.peek(1) == '"') {
            in.next();
            in.next();
            std::string delim;
            while (!in.done() && in.peek() != '(')
                delim += in.next();
            if (!in.done())
                in.next(); // '('
            const std::string close = ")" + delim + "\"";
            std::string body;
            while (!in.done()) {
                body += in.next();
                if (body.size() >= close.size() &&
                    body.compare(body.size() - close.size(),
                                 close.size(), close) == 0) {
                    body.resize(body.size() - close.size());
                    break;
                }
            }
            out.tokens.push_back(
                {Token::Kind::String, std::move(body), line, col});
            continue;
        }

        // String / char literals (escapes resolved enough to find
        // the closing quote).
        if (c == '"' || c == '\'') {
            const char quote = in.next();
            std::string body;
            while (!in.done() && in.peek() != quote) {
                char ch = in.next();
                if (ch == '\\' && !in.done()) {
                    body += ch;
                    body += in.next();
                    continue;
                }
                body += ch;
            }
            if (!in.done())
                in.next(); // closing quote
            out.tokens.push_back({quote == '"' ? Token::Kind::String
                                               : Token::Kind::CharLit,
                                  std::move(body), line, col});
            continue;
        }

        // Numbers (incl. 1.5e-3, 0x1f, 1'000'000, trailing suffixes;
        // a leading '.' followed by a digit is also a number).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' &&
             std::isdigit(static_cast<unsigned char>(in.peek(1))))) {
            std::string num;
            num += in.next();
            while (!in.done()) {
                const char n = in.peek();
                if (identCont(n) || n == '.' || n == '\'') {
                    num += in.next();
                    continue;
                }
                // Exponent sign: 1e-3 / 0x1p+4.
                if ((n == '+' || n == '-') && !num.empty()) {
                    const char p = num.back();
                    if (p == 'e' || p == 'E' || p == 'p' || p == 'P') {
                        num += in.next();
                        continue;
                    }
                }
                break;
            }
            out.tokens.push_back(
                {Token::Kind::Number, std::move(num), line, col});
            continue;
        }

        // Identifiers / keywords.
        if (identStart(c)) {
            std::string id;
            while (!in.done() && identCont(in.peek()))
                id += in.next();
            out.tokens.push_back(
                {Token::Kind::Identifier, std::move(id), line, col});
            continue;
        }

        // Punctuation, maximal munch over the multi-char table.
        std::string punct(1, in.next());
        for (;;) {
            bool extended = false;
            for (const char *p : kPuncts) {
                const std::size_t len = std::char_traits<char>::length(p);
                if (punct.size() < len &&
                    punct.compare(0, punct.size(), p, punct.size()) ==
                        0 &&
                    in.peek() == p[punct.size()]) {
                    punct += in.next();
                    extended = true;
                    break;
                }
            }
            if (!extended)
                break;
        }
        out.tokens.push_back(
            {Token::Kind::Punct, std::move(punct), line, col});
    }

    return out;
}

} // namespace gpusc::lint
