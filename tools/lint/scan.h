/**
 * @file
 * File discovery and loading for gpusc_lint: walks the scanned
 * roots (src/, examples/, bench/, tools/) for C++ sources, lexes
 * each into a SourceFile, and loads/matches the JSON baseline.
 */

#ifndef GPUSC_TOOLS_LINT_SCAN_H
#define GPUSC_TOOLS_LINT_SCAN_H

#include <string>
#include <vector>

#include "findings.h"
#include "rules.h"

namespace gpusc::lint {

/** The directories a default tree scan covers, relative to root. */
const std::vector<std::string> &defaultScanRoots();

/**
 * Load one file as a SourceFile. @p relPath is the repo-relative
 * path recorded in findings (and drives path-scoped rules).
 * Returns false if the file cannot be read.
 */
bool loadSource(const std::string &fsPath, const std::string &relPath,
                SourceFile &out);

/**
 * Recursively collect and lex every .h/.cc/.cpp under
 * root/<scanRoots>. Files that fail to read are reported to stderr
 * and skipped. Results are sorted by relPath for deterministic
 * output.
 */
std::vector<SourceFile> scanTree(const std::string &root);

/** One baseline entry: a finding grandfathered at (rule, file). */
struct BaselineEntry
{
    std::string rule;
    std::string file;
};

/**
 * Parse the baseline JSON (an array of {"rule", "file"} objects).
 * Returns false on malformed input. A missing file is an empty
 * baseline only if @p missingOk.
 */
bool loadBaseline(const std::string &path,
                  std::vector<BaselineEntry> &out, bool missingOk);

/**
 * Split @p findings into active and baselined (matched by rule+file
 * against @p baseline).
 */
void applyBaseline(const std::vector<BaselineEntry> &baseline,
                   std::vector<Finding> &findings,
                   std::vector<Finding> &baselined);

} // namespace gpusc::lint

#endif // GPUSC_TOOLS_LINT_SCAN_H
