#include "rules.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

namespace gpusc::lint {

namespace {

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** True if @p path is covered by any prefix in @p list. */
bool
inAnyPrefix(const std::string &path,
            const std::vector<std::string> &list)
{
    for (const std::string &p : list)
        if (startsWith(path, p))
            return true;
    return false;
}

// --- Suppressions --------------------------------------------------

struct Suppression
{
    std::string rule;
    int commentLine = 0;
    int firstCovered = 0; ///< first line the allow applies to
    int lastCovered = 0;  ///< last line (the line after the comment)
    bool justified = false;
    bool used = false;
};

/**
 * Parse suppression comments. Only comments that *begin* with the
 * marker count (so documentation that merely mentions the syntax is
 * not itself a suppression).
 */
std::vector<Suppression>
parseSuppressions(const std::vector<Comment> &comments)
{
    std::vector<Suppression> out;
    const std::string marker = "gpusc-lint:";
    for (const Comment &c : comments) {
        std::size_t lead = 0;
        while (lead < c.text.size() &&
               (c.text[lead] == ' ' || c.text[lead] == '\t'))
            ++lead;
        if (c.text.compare(lead, marker.size(), marker) != 0)
            continue;
        std::size_t pos = lead;
        while (pos != std::string::npos) {
            std::size_t at = c.text.find("allow(", pos);
            if (at == std::string::npos)
                break;
            at += 6;
            const std::size_t close = c.text.find(')', at);
            if (close == std::string::npos)
                break;
            Suppression s;
            s.rule = c.text.substr(at, close - at);
            s.commentLine = c.line;
            s.firstCovered = c.line;
            s.lastCovered = c.endLine + 1;
            // Justification: a non-empty tail after "): ".
            std::size_t tail = close + 1;
            while (tail < c.text.size() &&
                   (c.text[tail] == ':' || c.text[tail] == ' '))
                ++tail;
            s.justified = tail < c.text.size() && tail > close + 1 &&
                          c.text.find(':', close) != std::string::npos;
            out.push_back(s);
            pos = c.text.find(marker, close);
        }
    }
    return out;
}

// --- Token helpers -------------------------------------------------

using Tokens = std::vector<Token>;

/** Token before @p i, or null at the start. */
const Token *
prevTok(const Tokens &t, std::size_t i)
{
    return i > 0 ? &t[i - 1] : nullptr;
}

const Token *
nextTok(const Tokens &t, std::size_t i, std::size_t ahead = 1)
{
    return i + ahead < t.size() ? &t[i + ahead] : nullptr;
}

/** True when token @p i is reached through `.`, `->` or a non-std
 *  `::` qualifier — i.e. it is not the global / std entity. */
bool
memberOrForeignQualified(const Tokens &t, std::size_t i)
{
    const Token *p = prevTok(t, i);
    if (!p)
        return false;
    if (p->is(".") || p->is("->"))
        return true;
    if (p->is("::")) {
        const Token *q = i >= 2 ? &t[i - 2] : nullptr;
        return q && q->kind == Token::Kind::Identifier &&
               q->text != "std" && q->text != "chrono";
    }
    return false;
}

/** Advance past a balanced <...> starting at the `<` in @p i;
 *  returns the index just after the closing `>` (or tokens.size()).
 *  `>>` closes two levels, as in template argument lists. */
std::size_t
skipAngles(const Tokens &t, std::size_t i)
{
    int depth = 0;
    for (; i < t.size(); ++i) {
        if (t[i].is("<"))
            ++depth;
        else if (t[i].is("<<"))
            depth += 2;
        else if (t[i].is(">"))
            --depth;
        else if (t[i].is(">>"))
            depth -= 2;
        else if (t[i].is(";") && depth > 0)
            return i; // not a template argument list after all
        if (depth <= 0 && i > 0 &&
            (t[i].is(">") || t[i].is(">>")))
            return i + 1;
    }
    return i;
}

/** Index of the matching `)` for the `(` at @p open. */
std::size_t
matchParen(const Tokens &t, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < t.size(); ++i) {
        if (t[i].is("("))
            ++depth;
        else if (t[i].is(")") && --depth == 0)
            return i;
    }
    return t.size();
}

std::size_t
matchBrace(const Tokens &t, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < t.size(); ++i) {
        if (t[i].is("{"))
            ++depth;
        else if (t[i].is("}") && --depth == 0)
            return i;
    }
    return t.size();
}

// --- D1: wall clock ------------------------------------------------

const std::set<std::string> kChronoClocks = {
    "system_clock", "steady_clock", "high_resolution_clock"};
const std::set<std::string> kClockCalls = {
    "gettimeofday", "clock_gettime", "timespec_get", "ftime"};

void
ruleD1(const SourceFile &f, std::vector<Finding> &out)
{
    const Tokens &t = f.src.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != Token::Kind::Identifier)
            continue;
        if (kChronoClocks.count(t[i].text) &&
            !memberOrForeignQualified(t, i)) {
            out.push_back({"D1", f.relPath, t[i].line,
                           "std::chrono::" + t[i].text +
                               " is a banned wall-clock source; use "
                               "SimTime or obs::hostNowNs()"});
            continue;
        }
        if (kClockCalls.count(t[i].text)) {
            out.push_back({"D1", f.relPath, t[i].line,
                           t[i].text +
                               "() is a banned wall-clock source"});
            continue;
        }
        const Token *n = nextTok(t, i);
        if (t[i].text == "time" && n && n->is("(") &&
            !memberOrForeignQualified(t, i)) {
            // Only the libc call shapes: time(nullptr|NULL|0|&x).
            const Token *arg = nextTok(t, i, 2);
            if (arg && (arg->isIdent("nullptr") ||
                        arg->isIdent("NULL") || arg->is("&") ||
                        (arg->kind == Token::Kind::Number &&
                         arg->text == "0")))
                out.push_back({"D1", f.relPath, t[i].line,
                               "time() is a banned wall-clock "
                               "source"});
            continue;
        }
        if (t[i].text == "clock" && n && n->is("(")) {
            const Token *n2 = nextTok(t, i, 2);
            const Token *p = prevTok(t, i);
            const bool declOrMember =
                p && (p->is(".") || p->is("->") || p->is("&") ||
                      p->is("*") ||
                      p->kind == Token::Kind::Identifier);
            if (n2 && n2->is(")") && !declOrMember &&
                !memberOrForeignQualified(t, i))
                out.push_back({"D1", f.relPath, t[i].line,
                               "clock() is a banned wall-clock "
                               "source"});
        }
    }
}

// --- D2: nondeterministic randomness -------------------------------

const std::set<std::string> kRandomEngines = {
    "mt19937",      "mt19937_64",           "minstd_rand",
    "minstd_rand0", "default_random_engine", "ranlux24",
    "ranlux48",     "knuth_b"};

void
ruleD2(const SourceFile &f, std::vector<Finding> &out)
{
    const Tokens &t = f.src.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != Token::Kind::Identifier)
            continue;
        if (memberOrForeignQualified(t, i))
            continue;
        if (t[i].text == "random_device") {
            out.push_back({"D2", f.relPath, t[i].line,
                           "std::random_device is nondeterministic; "
                           "seed through util/rng"});
            continue;
        }
        if (kRandomEngines.count(t[i].text)) {
            out.push_back({"D2", f.relPath, t[i].line,
                           "ad-hoc std::" + t[i].text +
                               " engine; all randomness must flow "
                               "through util/rng"});
            continue;
        }
        const Token *n = nextTok(t, i);
        if ((t[i].text == "rand" || t[i].text == "srand") && n &&
            n->is("(")) {
            out.push_back({"D2", f.relPath, t[i].line,
                           t[i].text +
                               "() is nondeterministic across "
                               "platforms; use util/rng"});
        }
    }
}

// --- D3: unordered iteration in serializing TUs --------------------

const std::set<std::string> kUnorderedTemplates = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

/** Names declared anywhere with an unordered container type. */
std::set<std::string>
collectUnorderedNames(const std::vector<SourceFile> &files)
{
    std::set<std::string> names;
    for (const SourceFile &f : files) {
        const Tokens &t = f.src.tokens;
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != Token::Kind::Identifier ||
                !kUnorderedTemplates.count(t[i].text))
                continue;
            const Token *n = nextTok(t, i);
            if (!n || !n->is("<"))
                continue;
            std::size_t j = skipAngles(t, i + 1);
            // Skip cv/ref/pointer decoration before the name.
            while (j < t.size() &&
                   (t[j].is("&") || t[j].is("*") ||
                    t[j].isIdent("const")))
                ++j;
            if (j < t.size() &&
                t[j].kind == Token::Kind::Identifier)
                names.insert(t[j].text);
        }
    }
    return names;
}

void
ruleD3(const SourceFile &f, const std::set<std::string> &unordered,
       std::vector<Finding> &out)
{
    const Tokens &t = f.src.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].isIdent("for"))
            continue;
        const Token *n = nextTok(t, i);
        if (!n || !n->is("("))
            continue;
        const std::size_t close = matchParen(t, i + 1);
        // Find the range-for `:` at parenthesis depth 1.
        std::size_t colon = 0;
        int depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
            if (t[j].is("(") || t[j].is("[") || t[j].is("{"))
                ++depth;
            else if (t[j].is(")") || t[j].is("]") || t[j].is("}"))
                --depth;
            else if (t[j].is(":") && depth == 1) {
                colon = j;
                break;
            } else if (t[j].is(";"))
                break; // classic for loop
        }
        if (!colon)
            continue;
        for (std::size_t j = colon + 1; j < close; ++j) {
            if (t[j].kind == Token::Kind::Identifier &&
                unordered.count(t[j].text)) {
                out.push_back(
                    {"D3", f.relPath, t[i].line,
                     "range-for over unordered container '" +
                         t[j].text +
                         "' in a serializing TU; iterate a sorted "
                         "copy or use an ordered container"});
                break;
            }
        }
    }
}

// --- F1: floating-point equality -----------------------------------

void
ruleF1(const SourceFile &f, std::vector<Finding> &out)
{
    const Tokens &t = f.src.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].is("==") && !t[i].is("!="))
            continue;
        const Token *p = prevTok(t, i);
        const Token *n = nextTok(t, i);
        bool floaty = p && p->kind == Token::Kind::Number &&
                      isFloatLiteral(p->text);
        if (!floaty && n) {
            // Allow a unary sign before the literal.
            if ((n->is("-") || n->is("+")))
                n = nextTok(t, i, 2);
            floaty = n && n->kind == Token::Kind::Number &&
                     isFloatLiteral(n->text);
        }
        if (floaty)
            out.push_back({"F1", f.relPath, t[i].line,
                           "floating-point " + t[i].text +
                               " against a literal; compare with an "
                               "epsilon or restructure"});
    }
}

// --- H1: include guard naming --------------------------------------

void
ruleH1(const SourceFile &f, std::vector<Finding> &out)
{
    const Tokens &t = f.src.tokens;
    const std::string want = expectedGuard(f.relPath);

    // Locate the first preprocessor directive.
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!t[i].is("#"))
            continue;
        const Token &d = t[i + 1];
        if (d.isIdent("ifndef")) {
            const Token *name = nextTok(t, i, 2);
            if (!name || name->kind != Token::Kind::Identifier) {
                out.push_back({"H1", f.relPath, d.line,
                               "malformed include guard"});
                return;
            }
            if (name->text != want) {
                out.push_back({"H1", f.relPath, name->line,
                               "include guard '" + name->text +
                                   "' should be '" + want + "'"});
                return;
            }
            const Token *def = nextTok(t, i, 4);
            if (!nextTok(t, i, 3) || !nextTok(t, i, 3)->is("#") ||
                !def || !def->isIdent("define") ||
                !nextTok(t, i, 5) ||
                nextTok(t, i, 5)->text != want) {
                out.push_back({"H1", f.relPath, name->line,
                               "#ifndef " + want +
                                   " must be followed by #define " +
                                   want});
            }
            return;
        }
        if (d.isIdent("pragma")) {
            out.push_back({"H1", f.relPath, d.line,
                           "#pragma once: use the named guard '" +
                               want + "' instead"});
            return;
        }
        // Any other directive first (e.g. #include) means the file
        // has no guard at all.
        out.push_back({"H1", f.relPath, d.line,
                       "missing include guard '" + want + "'"});
        return;
    }
    out.push_back(
        {"H1", f.relPath, 1, "missing include guard '" + want + "'"});
}

// --- S1: explicit initializers on wire-format structs --------------

const std::set<std::string> kNonMemberLeads = {
    "using",  "typedef",       "friend", "template",
    "static_assert", "operator", "explicit"};

void
checkStructBody(const SourceFile &f, const Tokens &t,
                const std::string &structName, std::size_t open,
                std::size_t close, std::vector<Finding> &out)
{
    std::size_t i = open + 1;
    while (i < close) {
        // Access labels.
        if ((t[i].isIdent("public") || t[i].isIdent("private") ||
             t[i].isIdent("protected")) &&
            nextTok(t, i) && nextTok(t, i)->is(":")) {
            i += 2;
            continue;
        }
        // Nested enums: skip whole definition (checked elsewhere if
        // someone nests a struct, the outer scan still finds it).
        if (t[i].isIdent("enum")) {
            while (i < close && !t[i].is("{"))
                ++i;
            i = matchBrace(t, i) + 1;
            if (i < close && t[i].is(";"))
                ++i;
            continue;
        }
        if (t[i].isIdent("struct") || t[i].isIdent("class")) {
            // Nested type: the outer token scan visits it on its
            // own; skip past its body here.
            while (i < close && !t[i].is("{") && !t[i].is(";"))
                ++i;
            if (i < close && t[i].is("{"))
                i = matchBrace(t, i) + 1;
            else
                ++i;
            continue;
        }

        // One member-or-function statement.
        const std::size_t stmtBegin = i;
        bool sawParen = false, sawEq = false, sawBraceInit = false;
        bool skip = t[i].kind == Token::Kind::Identifier &&
                    kNonMemberLeads.count(t[i].text);
        std::string lastIdent;
        while (i < close) {
            const Token &tok = t[i];
            if (tok.is(";")) {
                ++i;
                break;
            }
            if (tok.is("=") && !sawParen)
                sawEq = true;
            if (tok.is("(") && !sawEq) {
                sawParen = true;
                i = matchParen(t, i) + 1;
                continue;
            }
            if (tok.is("{")) {
                if (!sawParen && !sawEq)
                    sawBraceInit = true;
                i = matchBrace(t, i) + 1;
                if (sawParen) {
                    // Function body: statement ends here, with or
                    // without a trailing semicolon.
                    if (i < close && t[i].is(";"))
                        ++i;
                    break;
                }
                continue;
            }
            if (tok.is("[")) {
                // Array extent; not an initializer.
                int depth = 0;
                for (; i < close; ++i) {
                    if (t[i].is("["))
                        ++depth;
                    else if (t[i].is("]") && --depth == 0)
                        break;
                }
                ++i;
                continue;
            }
            if (tok.kind == Token::Kind::Identifier)
                lastIdent = tok.text;
            ++i;
        }

        if (skip || sawParen || sawEq || sawBraceInit ||
            lastIdent.empty())
            continue;
        out.push_back({"S1", f.relPath, t[stmtBegin].line,
                       "member '" + lastIdent +
                           "' of wire-format struct '" + structName +
                           "' lacks an explicit initializer"});
    }
}

void
ruleS1(const SourceFile &f, std::vector<Finding> &out)
{
    const Tokens &t = f.src.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!t[i].isIdent("struct"))
            continue;
        const Token *p = prevTok(t, i);
        if (p && (p->isIdent("enum") || p->is("<") || p->is(",")))
            continue; // `enum struct` / template params
        const Token *name = nextTok(t, i);
        if (!name || name->kind != Token::Kind::Identifier)
            continue;
        // Find the `{` of the definition (skipping base clauses);
        // a `;` first means forward declaration.
        std::size_t j = i + 2;
        while (j < t.size() && !t[j].is("{") && !t[j].is(";") &&
               !t[j].is("("))
            ++j;
        if (j >= t.size() || !t[j].is("{"))
            continue;
        const std::size_t close = matchBrace(t, j);
        checkStructBody(f, t, name->text, j, close, out);
    }
}

} // namespace

std::string
expectedGuard(const std::string &relPath)
{
    std::string path = relPath;
    if (startsWith(path, "src/"))
        path = path.substr(4);
    std::string guard = "GPUSC_";
    for (char c : path) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            guard += char(
                std::toupper(static_cast<unsigned char>(c)));
        else
            guard += '_';
    }
    return guard;
}

std::vector<Finding>
runRules(const std::vector<SourceFile> &files,
         const LintConfig &config)
{
    const std::set<std::string> unordered =
        collectUnorderedNames(files);

    std::vector<Finding> out;
    for (const SourceFile &f : files) {
        std::vector<Finding> raw;
        if (!inAnyPrefix(f.relPath, config.wallClockAllow))
            ruleD1(f, raw);
        if (!inAnyPrefix(f.relPath, config.rngAllow))
            ruleD2(f, raw);
        if (inAnyPrefix(f.relPath, config.serializingTus))
            ruleD3(f, unordered, raw);
        ruleF1(f, raw);
        if (endsWith(f.relPath, ".h") &&
            inAnyPrefix(f.relPath, config.headerRoots))
            ruleH1(f, raw);
        if (startsWith(f.relPath, "src/trace/") &&
            endsWith(f.relPath, ".h"))
            ruleS1(f, raw);

        // Apply inline suppressions; bare or dangling allows are
        // findings themselves (and are never suppressible).
        std::vector<Suppression> sups =
            parseSuppressions(f.src.comments);
        for (const Finding &fd : raw) {
            bool suppressed = false;
            for (Suppression &s : sups) {
                if (s.rule == fd.rule && s.justified &&
                    fd.line >= s.firstCovered &&
                    fd.line <= s.lastCovered) {
                    s.used = true;
                    suppressed = true;
                }
            }
            if (!suppressed)
                out.push_back(fd);
        }
        for (const Suppression &s : sups) {
            if (!s.justified)
                out.push_back(
                    {"X1", f.relPath, s.commentLine,
                     "suppression allow(" + s.rule +
                         ") lacks a justification; write "
                         "`gpusc-lint: allow(" +
                         s.rule + "): <why>`"});
            else if (!s.used)
                out.push_back({"X2", f.relPath, s.commentLine,
                               "suppression allow(" + s.rule +
                                   ") matches no finding; remove "
                                   "it"});
        }
    }
    sortFindings(out);
    return out;
}

} // namespace gpusc::lint
