#include "findings.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace gpusc::lint {

namespace {

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendFindingArray(std::string &out, const std::vector<Finding> &fs)
{
    out += '[';
    bool first = true;
    for (const Finding &f : fs) {
        if (!first)
            out += ", ";
        first = false;
        out += "{\"rule\": ";
        appendJsonString(out, f.rule);
        out += ", \"file\": ";
        appendJsonString(out, f.file);
        char buf[32];
        std::snprintf(buf, sizeof(buf), ", \"line\": %d", f.line);
        out += buf;
        out += ", \"message\": ";
        appendJsonString(out, f.message);
        out += '}';
    }
    out += ']';
}

} // namespace

void
sortFindings(std::vector<Finding> &findings)
{
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
}

std::string
renderTable(const std::vector<Finding> &findings)
{
    if (findings.empty())
        return "gpusc_lint: no findings\n";

    std::size_t ruleW = 4, locW = 8;
    std::vector<std::string> locs;
    locs.reserve(findings.size());
    for (const Finding &f : findings) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), ":%d", f.line);
        locs.push_back(f.file + buf);
        ruleW = std::max(ruleW, f.rule.size());
        locW = std::max(locW, locs.back().size());
    }

    std::string out;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%-*s  %-*s  ", int(ruleW),
                  "rule", int(locW), "location");
    out += buf;
    out += "message\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%-*s  %-*s  ", int(ruleW),
                      findings[i].rule.c_str(), int(locW),
                      locs[i].c_str());
        out += buf;
        out += findings[i].message;
        out += '\n';
    }
    std::snprintf(buf, sizeof(buf), "%zu finding%s\n",
                  findings.size(), findings.size() == 1 ? "" : "s");
    out += buf;
    return out;
}

std::string
renderJson(const std::vector<Finding> &active,
           const std::vector<Finding> &baselined)
{
    std::map<std::string, int> counts;
    for (const Finding &f : active)
        ++counts[f.rule];

    std::string out = "{\"version\": 1, \"findings\": ";
    appendFindingArray(out, active);
    out += ", \"baselined\": ";
    appendFindingArray(out, baselined);
    out += ", \"counts\": {";
    bool first = true;
    for (const auto &[rule, n] : counts) {
        if (!first)
            out += ", ";
        first = false;
        appendJsonString(out, rule);
        char buf[24];
        std::snprintf(buf, sizeof(buf), ": %d", n);
        out += buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "}, \"total\": %zu}\n",
                  active.size());
    out += buf;
    return out;
}

} // namespace gpusc::lint
