/**
 * @file
 * Finding records and their two renderings: the human-readable
 * aligned table and the machine-readable JSON document (the artifact
 * CI uploads). Schema:
 *
 *   { "version": 1,
 *     "findings":  [ {"rule", "file", "line", "message"} ... ],
 *     "baselined": [ same shape ... ],
 *     "counts":    { "<rule>": n, ... },
 *     "total":     n }
 *
 * `findings` are the active violations that fail the build;
 * `baselined` are matches against the checked-in baseline file
 * (which must be empty at merge).
 */

#ifndef GPUSC_TOOLS_LINT_FINDINGS_H
#define GPUSC_TOOLS_LINT_FINDINGS_H

#include <string>
#include <vector>

namespace gpusc::lint {

/** One rule violation at a source location. */
struct Finding
{
    std::string rule;    ///< rule id: D1, D2, D3, F1, H1, S1, X1, X2
    std::string file;    ///< repo-relative path
    int line = 0;        ///< 1-based
    std::string message; ///< what was matched and why it is banned
};

/** Stable ordering: file, then line, then rule. */
void sortFindings(std::vector<Finding> &findings);

/** Aligned human-readable table, one row per finding. */
std::string renderTable(const std::vector<Finding> &findings);

/** The JSON document described in the file header. */
std::string renderJson(const std::vector<Finding> &active,
                       const std::vector<Finding> &baselined);

} // namespace gpusc::lint

#endif // GPUSC_TOOLS_LINT_FINDINGS_H
