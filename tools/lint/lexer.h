/**
 * @file
 * A lightweight C++ lexer for gpusc_lint.
 *
 * Tokenizes just enough of C++ for the project's lint rules: it
 * resolves comments (kept in a side list so suppression comments stay
 * addressable), string/char literals (including raw strings), numeric
 * literals, identifiers and maximal-munch punctuation, and it splices
 * backslash-continued lines. It deliberately does not preprocess:
 * directives are lexed like ordinary tokens (`#` then identifiers),
 * which is exactly what the include-guard rule wants to see.
 */

#ifndef GPUSC_TOOLS_LINT_LEXER_H
#define GPUSC_TOOLS_LINT_LEXER_H

#include <string>
#include <vector>

namespace gpusc::lint {

/** One lexical token (comments are reported separately). */
struct Token
{
    enum class Kind
    {
        Identifier, ///< identifiers and keywords alike
        Number,     ///< integer or floating literal, suffixes kept
        String,     ///< string literal (quotes stripped)
        CharLit,    ///< character literal (quotes stripped)
        Punct,      ///< operator / punctuation, maximal munch
    };

    Kind kind = Kind::Punct;
    std::string text;
    int line = 0; ///< 1-based line of the token's first character
    int column = 0;

    bool is(const char *t) const { return text == t; }
    bool isIdent(const char *t) const
    {
        return kind == Kind::Identifier && text == t;
    }
};

/** One comment, with its source range (for suppression lookup). */
struct Comment
{
    std::string text; ///< body without the // or /* */ markers
    int line = 0;     ///< line the comment starts on
    int endLine = 0;  ///< line the comment ends on (block comments)
};

/** Result of lexing one file. */
struct LexedSource
{
    std::vector<Token> tokens;
    std::vector<Comment> comments;
    /** Raw source split into lines (1-based access via line - 1). */
    std::vector<std::string> lines;
};

/**
 * Lex @p source. Never fails: unterminated literals are closed at
 * end of input so rules always see a token stream.
 */
LexedSource lex(const std::string &source);

/** True if a Number token spells a floating-point literal. */
bool isFloatLiteral(const std::string &numberText);

} // namespace gpusc::lint

#endif // GPUSC_TOOLS_LINT_LEXER_H
