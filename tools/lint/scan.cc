#include "scan.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;

namespace gpusc::lint {

const std::vector<std::string> &
defaultScanRoots()
{
    static const std::vector<std::string> roots = {
        "src", "examples", "bench", "tools"};
    return roots;
}

bool
loadSource(const std::string &fsPath, const std::string &relPath,
           SourceFile &out)
{
    std::ifstream in(fsPath, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out.relPath = relPath;
    out.src = lex(buf.str());
    return true;
}

namespace {

bool
isCxxSource(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".cpp" ||
           ext == ".hpp";
}

} // namespace

std::vector<SourceFile>
scanTree(const std::string &root)
{
    std::vector<SourceFile> files;
    for (const std::string &sub : defaultScanRoots()) {
        const fs::path dir = fs::path(root) / sub;
        std::error_code ec;
        if (!fs::is_directory(dir, ec))
            continue;
        for (auto it = fs::recursive_directory_iterator(dir, ec);
             !ec && it != fs::recursive_directory_iterator(); ++it) {
            if (!it->is_regular_file() || !isCxxSource(it->path()))
                continue;
            const std::string rel =
                fs::relative(it->path(), root, ec).generic_string();
            SourceFile sf;
            if (loadSource(it->path().string(), rel, sf))
                files.push_back(std::move(sf));
            else
                std::fprintf(stderr,
                             "gpusc_lint: cannot read %s\n",
                             it->path().string().c_str());
        }
    }
    std::sort(files.begin(), files.end(),
              [](const SourceFile &a, const SourceFile &b) {
                  return a.relPath < b.relPath;
              });
    return files;
}

// --- Baseline ------------------------------------------------------
//
// The baseline is a deliberately tiny JSON dialect: one array of
// flat objects with string values. A hand-rolled parser keeps the
// tool dependency-free; anything it cannot parse is a hard error so
// a malformed baseline can never silently grandfather findings.

namespace {

void
skipWs(const std::string &s, std::size_t &i)
{
    while (i < s.size() &&
           (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
            s[i] == '\r'))
        ++i;
}

bool
parseString(const std::string &s, std::size_t &i, std::string &out)
{
    skipWs(s, i);
    if (i >= s.size() || s[i] != '"')
        return false;
    ++i;
    out.clear();
    while (i < s.size() && s[i] != '"') {
        if (s[i] == '\\' && i + 1 < s.size())
            ++i;
        out += s[i++];
    }
    if (i >= s.size())
        return false;
    ++i;
    return true;
}

} // namespace

bool
loadBaseline(const std::string &path,
             std::vector<BaselineEntry> &out, bool missingOk)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return missingOk;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string s = buf.str();

    std::size_t i = 0;
    skipWs(s, i);
    if (i >= s.size() || s[i] != '[')
        return false;
    ++i;
    skipWs(s, i);
    if (i < s.size() && s[i] == ']')
        return true; // empty baseline
    for (;;) {
        skipWs(s, i);
        if (i >= s.size() || s[i] != '{')
            return false;
        ++i;
        BaselineEntry e;
        for (;;) {
            std::string key, value;
            if (!parseString(s, i, key))
                return false;
            skipWs(s, i);
            if (i >= s.size() || s[i] != ':')
                return false;
            ++i;
            if (!parseString(s, i, value))
                return false;
            if (key == "rule")
                e.rule = value;
            else if (key == "file")
                e.file = value;
            skipWs(s, i);
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            break;
        }
        skipWs(s, i);
        if (i >= s.size() || s[i] != '}')
            return false;
        ++i;
        if (e.rule.empty() || e.file.empty())
            return false;
        out.push_back(std::move(e));
        skipWs(s, i);
        if (i < s.size() && s[i] == ',') {
            ++i;
            continue;
        }
        break;
    }
    skipWs(s, i);
    return i < s.size() && s[i] == ']';
}

void
applyBaseline(const std::vector<BaselineEntry> &baseline,
              std::vector<Finding> &findings,
              std::vector<Finding> &baselined)
{
    if (baseline.empty())
        return;
    std::vector<Finding> active;
    for (Finding &f : findings) {
        const bool matched = std::any_of(
            baseline.begin(), baseline.end(),
            [&](const BaselineEntry &e) {
                return e.rule == f.rule && e.file == f.file;
            });
        (matched ? baselined : active).push_back(std::move(f));
    }
    findings = std::move(active);
}

} // namespace gpusc::lint
