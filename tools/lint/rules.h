/**
 * @file
 * The gpusc_lint rule engine.
 *
 * Rules encode the project's determinism & hygiene invariants (see
 * DESIGN.md "Static analysis" for the rationale behind each):
 *
 *   D1  banned wall-clock sources (std::chrono clocks, time(),
 *       gettimeofday, clock_gettime, clock()) outside the allowlist —
 *       host time in pipeline code breaks replay == live.
 *   D2  banned nondeterministic randomness (rand, srand,
 *       std::random_device, ad-hoc engines) anywhere but util/rng.
 *   D3  range-for over std::unordered_{map,set} in serializing /
 *       exporting translation units — exported order must come from
 *       sorted containers.
 *   F1  floating-point == / != against a floating literal.
 *   H1  include guard must be GPUSC_<PATH>_H (self-containment is
 *       the companion CMake pass; see tools/lint/CMakeLists.txt).
 *   S1  every member of a struct in src/trace/ headers (the wire
 *       format) carries an explicit initializer.
 *
 * Suppression: `// gpusc-lint: allow(<rule>): <justification>` on the
 * finding's line or the line above silences that rule there. The
 * justification is mandatory (X1 flags a bare allow) and suppressions
 * that silence nothing are themselves findings (X2), so stale allows
 * cannot accumulate.
 */

#ifndef GPUSC_TOOLS_LINT_RULES_H
#define GPUSC_TOOLS_LINT_RULES_H

#include <string>
#include <vector>

#include "findings.h"
#include "lexer.h"

namespace gpusc::lint {

/** One file handed to the engine. */
struct SourceFile
{
    /** Repo-relative path with forward slashes (drives the
     *  path-scoped rules and appears in findings). */
    std::string relPath;
    LexedSource src;
};

/** Path scoping for the rules; prefixes are repo-relative. */
struct LintConfig
{
    /** D1: files allowed to read host clocks. */
    std::vector<std::string> wallClockAllow = {
        "src/obs/span.cc", // the one hostNowNs() definition
        "bench/",          // harness timers measure the host by design
    };

    /** D2: files allowed to touch raw randomness sources. */
    std::vector<std::string> rngAllow = {
        "src/util/rng.cc",
        "src/util/rng.h",
    };

    /** D3: translation units whose output order is part of their
     *  contract (serializers, exporters, CLI tables). */
    std::vector<std::string> serializingTus = {
        "src/trace/",
        "src/obs/",
        "src/eval/",
        "src/util/table",
        "examples/",
    };

    /** H1/S1: prefixes of paths whose headers are public. */
    std::vector<std::string> headerRoots = {
        "src/",
        "bench/",
        "tools/lint/",
    };
};

/**
 * Run every rule over @p files and apply inline suppressions.
 * D3 is cross-file: unordered-container declarations anywhere in
 * @p files inform range-for checks in every serializing TU.
 */
std::vector<Finding> runRules(const std::vector<SourceFile> &files,
                              const LintConfig &config = {});

/** The include guard H1 expects for @p relPath. */
std::string expectedGuard(const std::string &relPath);

} // namespace gpusc::lint

#endif // GPUSC_TOOLS_LINT_RULES_H
